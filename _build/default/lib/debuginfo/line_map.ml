type t = Types.line_entry array

let build (dbg : Types.t) =
  let all =
    Array.fold_left
      (fun acc (cu : Types.cu) -> List.rev_append cu.cu_lines acc)
      [] dbg.cus
  in
  let arr = Array.of_list all in
  Array.sort
    (fun (a : Types.line_entry) (b : Types.line_entry) ->
      compare a.range.lo b.range.lo)
    arr;
  arr

let lookup t addr =
  let n = Array.length t in
  (* rightmost entry with lo <= addr *)
  let rec bsearch lo hi best =
    if lo > hi then best
    else
      let mid = (lo + hi) / 2 in
      if t.(mid).Types.range.lo <= addr then bsearch (mid + 1) hi (Some mid)
      else bsearch lo (mid - 1) best
  in
  match bsearch 0 (n - 1) None with
  | Some i when Types.range_contains t.(i).Types.range addr -> Some t.(i)
  | _ -> None

let length = Array.length

let inline_context (dbg : Types.t) addr =
  let rec walk (nodes : Types.inline_node list) acc =
    match
      List.find_opt
        (fun (n : Types.inline_node) ->
          List.exists (fun r -> Types.range_contains r addr) n.inl_ranges)
        nodes
    with
    | Some n -> walk n.children (n.callee :: acc)
    | None -> List.rev acc
  in
  let in_func (f : Types.func_info) =
    List.exists (fun r -> Types.range_contains r addr) f.fi_ranges
  in
  let rec find_cu i =
    if i >= Array.length dbg.cus then []
    else
      match List.find_opt in_func dbg.cus.(i).cu_funcs with
      | Some f -> f.fi_name :: walk f.fi_inlines []
      | None -> find_cu (i + 1)
  in
  find_cu 0
