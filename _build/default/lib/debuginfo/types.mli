(** Debug-information model.

    A simplified DWARF: one tree per compilation unit (CU) carrying function
    address ranges (possibly several per function, possibly shared between
    functions — which is how real DWARF encodes functions sharing code,
    paper Section 8.1), a line table, and inline-call trees (the basis of
    hpcstruct's inline attribution, analysis capability AC4). *)

type range = { lo : int; hi : int }
(** Half-open address interval [lo, hi). *)

type line_entry = { range : range; file : string; line : int }

type inline_node = {
  callee : string;  (** name of the inlined function *)
  call_file : string;
  call_line : int;
  inl_ranges : range list;
  children : inline_node list;
}

type func_info = {
  fi_name : string;
  fi_ranges : range list;
  fi_decl_file : string;
  fi_decl_line : int;
  fi_inlines : inline_node list;
}

type cu = {
  cu_name : string;
  cu_funcs : func_info list;
  cu_lines : line_entry list;
  cu_pad : int;  (** bytes of type-description padding (model of the bulk of
                     [.debug_*]); parsing must traverse it *)
}

type t = { cus : cu array }

val range_contains : range -> int -> bool
val range_size : range -> int
val func_count : t -> int
val line_count : t -> int
