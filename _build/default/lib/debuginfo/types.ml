type range = { lo : int; hi : int }
type line_entry = { range : range; file : string; line : int }

type inline_node = {
  callee : string;
  call_file : string;
  call_line : int;
  inl_ranges : range list;
  children : inline_node list;
}

type func_info = {
  fi_name : string;
  fi_ranges : range list;
  fi_decl_file : string;
  fi_decl_line : int;
  fi_inlines : inline_node list;
}

type cu = {
  cu_name : string;
  cu_funcs : func_info list;
  cu_lines : line_entry list;
  cu_pad : int;
}

type t = { cus : cu array }

let range_contains r a = a >= r.lo && a < r.hi
let range_size r = r.hi - r.lo

let func_count t =
  Array.fold_left (fun acc cu -> acc + List.length cu.cu_funcs) 0 t.cus

let line_count t =
  Array.fold_left (fun acc cu -> acc + List.length cu.cu_lines) 0 t.cus
