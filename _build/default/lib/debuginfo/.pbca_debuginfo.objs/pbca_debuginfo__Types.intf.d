lib/debuginfo/types.mli:
