lib/debuginfo/types.ml: Array List
