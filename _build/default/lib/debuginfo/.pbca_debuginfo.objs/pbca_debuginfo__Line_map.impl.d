lib/debuginfo/line_map.ml: Array List Types
