lib/debuginfo/codec.mli: Bytes Pbca_concurrent Types
