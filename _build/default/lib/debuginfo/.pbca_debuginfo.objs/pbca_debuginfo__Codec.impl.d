lib/debuginfo/codec.ml: Array Bytes Char List Option Pbca_binfmt Pbca_concurrent Types
