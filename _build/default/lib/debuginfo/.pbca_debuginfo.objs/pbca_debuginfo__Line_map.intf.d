lib/debuginfo/line_map.mli: Types
