(** Address-to-source lookup structure.

    Built serially from parsed CUs into one sorted array queried by binary
    search — the "serial structure optimized for accelerated lookup" of
    hpcstruct phase 3 (paper Figure 2); the build is the part the paper
    notes is difficult to parallelize. Queries are pure and thread-safe. *)

type t

val build : Types.t -> t
val lookup : t -> int -> Types.line_entry option
val length : t -> int

val inline_context : Types.t -> int -> string list
(** [inline_context dbg addr] is the inline call chain at [addr], outermost
    first (analysis capability AC4). Linear in the number of functions; used
    on demand, not in hot paths. *)
