module W = Pbca_binfmt.Bio.W
module R = Pbca_binfmt.Bio.R

let write_range w (r : Types.range) =
  W.u64 w r.lo;
  W.u64 w r.hi

let read_range r : Types.range =
  let lo = R.u64 r in
  let hi = R.u64 r in
  { lo; hi }

let write_ranges w rs =
  W.u16 w (List.length rs);
  List.iter (write_range w) rs

let read_ranges r = List.init (R.u16 r) (fun _ -> read_range r)

let rec write_inline w (n : Types.inline_node) =
  W.str w n.callee;
  W.str w n.call_file;
  W.u32 w n.call_line;
  write_ranges w n.inl_ranges;
  W.u16 w (List.length n.children);
  List.iter (write_inline w) n.children

let rec read_inline r : Types.inline_node =
  let callee = R.str r in
  let call_file = R.str r in
  let call_line = R.u32 r in
  let inl_ranges = read_ranges r in
  let children = List.init (R.u16 r) (fun _ -> read_inline r) in
  { callee; call_file; call_line; inl_ranges; children }

let write_func w (f : Types.func_info) =
  W.str w f.fi_name;
  write_ranges w f.fi_ranges;
  W.str w f.fi_decl_file;
  W.u32 w f.fi_decl_line;
  W.u16 w (List.length f.fi_inlines);
  List.iter (write_inline w) f.fi_inlines

let read_func r : Types.func_info =
  let fi_name = R.str r in
  let fi_ranges = read_ranges r in
  let fi_decl_file = R.str r in
  let fi_decl_line = R.u32 r in
  let fi_inlines = List.init (R.u16 r) (fun _ -> read_inline r) in
  { fi_name; fi_ranges; fi_decl_file; fi_decl_line; fi_inlines }

let write_line w (l : Types.line_entry) =
  write_range w l.range;
  W.str w l.file;
  W.u32 w l.line

let read_line r : Types.line_entry =
  let range = read_range r in
  let file = R.str r in
  let line = R.u32 r in
  { range; file; line }

(* Deterministic padding: the byte at index [i] of a CU's pad blob. Decoding
   recomputes the checksum, so the bytes must be a pure function of the
   index. Three mixing passes model the several walks real DWARF parsing
   makes over type information (abbrevs, DIEs, attribute forms) — parsing
   is several times slower per byte than reading. *)
let pad_byte i = (i * 167) land 0xff

let mix acc c pass = (acc * 33) + (c lxor (pass * 0x5f)) land 0xffffff

let checksum_bytes get n =
  let acc = ref 0 in
  for pass = 1 to 3 do
    for i = 0 to n - 1 do
      acc := mix !acc (get i) pass land 0xffffff
    done
  done;
  !acc land 0xffffff

let pad_checksum n = checksum_bytes pad_byte n

let encode_cu (cu : Types.cu) =
  let w = W.create () in
  W.str w cu.cu_name;
  W.u32 w (List.length cu.cu_funcs);
  List.iter (write_func w) cu.cu_funcs;
  W.u32 w (List.length cu.cu_lines);
  List.iter (write_line w) cu.cu_lines;
  W.u32 w cu.cu_pad;
  W.u32 w (pad_checksum cu.cu_pad);
  let pad = Bytes.init cu.cu_pad (fun i -> Char.chr (pad_byte i)) in
  W.raw w pad;
  W.contents w

let decode_cu blob : Types.cu =
  let r = R.of_bytes blob in
  try
    let cu_name = R.str r in
    let cu_funcs = List.init (R.u32 r) (fun _ -> read_func r) in
    let cu_lines = List.init (R.u32 r) (fun _ -> read_line r) in
    let cu_pad = R.u32 r in
    let expect = R.u32 r in
    let pad = R.raw r cu_pad in
    (* Walking the padding models the cost of parsing type DIEs. *)
    let sum = checksum_bytes (fun i -> Char.code (Bytes.get pad i)) cu_pad in
    if sum <> expect then failwith "Debuginfo: CU checksum mismatch";
    { cu_name; cu_funcs; cu_lines; cu_pad }
  with R.Truncated -> failwith "Debuginfo: truncated CU"

let encode (t : Types.t) =
  let w = W.create () in
  W.u32 w (Array.length t.cus);
  Array.iter (fun cu -> W.bytes w (encode_cu cu)) t.cus;
  W.contents w

let cu_blobs data =
  let r = R.of_bytes data in
  try
    let n = R.u32 r in
    Array.init n (fun _ -> R.bytes r)
  with R.Truncated -> failwith "Debuginfo: truncated section"

let decode ?pool data : Types.t =
  let blobs = cu_blobs data in
  let out = Array.make (Array.length blobs) None in
  let fill i = out.(i) <- Some (decode_cu blobs.(i)) in
  (match pool with
  | Some p -> Pbca_concurrent.Task_pool.parallel_for p 0 (Array.length blobs) fill
  | None ->
    for i = 0 to Array.length blobs - 1 do
      fill i
    done);
  { cus = Array.map (fun o -> Option.get o) out }
