type cond = Eq | Ne | Lt | Ge | Gt | Le

type t =
  | Nop
  | Halt
  | Mov_rr of Reg.t * Reg.t
  | Mov_ri of Reg.t * int
  | Load of Reg.t * Reg.t * int
  | Store of Reg.t * int * Reg.t
  | Lea of Reg.t * int
  | Add of Reg.t * Reg.t
  | Sub of Reg.t * Reg.t
  | Mul of Reg.t * Reg.t
  | And_ of Reg.t * Reg.t
  | Or_ of Reg.t * Reg.t
  | Xor of Reg.t * Reg.t
  | Shl of Reg.t * int
  | Shr of Reg.t * int
  | Add_ri of Reg.t * int
  | Cmp_rr of Reg.t * Reg.t
  | Cmp_ri of Reg.t * int
  | Push of Reg.t
  | Pop of Reg.t
  | Enter of int
  | Leave
  | Jmp of int
  | Jcc of cond * int
  | Jmp_ind of Reg.t
  | Call of int
  | Call_ind of Reg.t
  | Ret
  | Load_idx of Reg.t * Reg.t * Reg.t * int

let equal = Stdlib.( = )

let cond_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Ge -> "ge"
  | Gt -> "gt"
  | Le -> "le"

let mnemonic = function
  | Nop -> "nop"
  | Halt -> "halt"
  | Mov_rr _ | Mov_ri _ -> "mov"
  | Load _ -> "load"
  | Store _ -> "store"
  | Lea _ -> "lea"
  | Add _ | Add_ri _ -> "add"
  | Sub _ -> "sub"
  | Mul _ -> "mul"
  | And_ _ -> "and"
  | Or_ _ -> "or"
  | Xor _ -> "xor"
  | Shl _ -> "shl"
  | Shr _ -> "shr"
  | Cmp_rr _ | Cmp_ri _ -> "cmp"
  | Push _ -> "push"
  | Pop _ -> "pop"
  | Enter _ -> "enter"
  | Leave -> "leave"
  | Jmp _ -> "jmp"
  | Jcc (c, _) -> "j" ^ cond_name c
  | Jmp_ind _ -> "jmp*"
  | Call _ -> "call"
  | Call_ind _ -> "call*"
  | Ret -> "ret"
  | Load_idx _ -> "loadidx"

let pp fmt i =
  let r = Reg.name in
  match i with
  | Nop -> Format.fprintf fmt "nop"
  | Halt -> Format.fprintf fmt "halt"
  | Mov_rr (d, s) -> Format.fprintf fmt "mov %s, %s" (r d) (r s)
  | Mov_ri (d, v) -> Format.fprintf fmt "mov %s, %d" (r d) v
  | Load (d, b, o) -> Format.fprintf fmt "load %s, [%s%+d]" (r d) (r b) o
  | Store (b, o, s) -> Format.fprintf fmt "store [%s%+d], %s" (r b) o (r s)
  | Lea (d, o) -> Format.fprintf fmt "lea %s, [pc%+d]" (r d) o
  | Add (d, s) -> Format.fprintf fmt "add %s, %s" (r d) (r s)
  | Sub (d, s) -> Format.fprintf fmt "sub %s, %s" (r d) (r s)
  | Mul (d, s) -> Format.fprintf fmt "mul %s, %s" (r d) (r s)
  | And_ (d, s) -> Format.fprintf fmt "and %s, %s" (r d) (r s)
  | Or_ (d, s) -> Format.fprintf fmt "or %s, %s" (r d) (r s)
  | Xor (d, s) -> Format.fprintf fmt "xor %s, %s" (r d) (r s)
  | Shl (d, n) -> Format.fprintf fmt "shl %s, %d" (r d) n
  | Shr (d, n) -> Format.fprintf fmt "shr %s, %d" (r d) n
  | Add_ri (d, v) -> Format.fprintf fmt "add %s, %d" (r d) v
  | Cmp_rr (a, b) -> Format.fprintf fmt "cmp %s, %s" (r a) (r b)
  | Cmp_ri (a, v) -> Format.fprintf fmt "cmp %s, %d" (r a) v
  | Push s -> Format.fprintf fmt "push %s" (r s)
  | Pop d -> Format.fprintf fmt "pop %s" (r d)
  | Enter n -> Format.fprintf fmt "enter %d" n
  | Leave -> Format.fprintf fmt "leave"
  | Jmp o -> Format.fprintf fmt "jmp %+d" o
  | Jcc (c, o) -> Format.fprintf fmt "j%s %+d" (cond_name c) o
  | Jmp_ind s -> Format.fprintf fmt "jmp *%s" (r s)
  | Call o -> Format.fprintf fmt "call %+d" o
  | Call_ind s -> Format.fprintf fmt "call *%s" (r s)
  | Ret -> Format.fprintf fmt "ret"
  | Load_idx (d, b, i, s) ->
    Format.fprintf fmt "loadidx %s, [%s + %s*%d]" (r d) (r b) (r i) s

let to_string i = Format.asprintf "%a" pp i
