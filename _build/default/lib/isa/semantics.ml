type flow =
  | Fallthrough
  | Jump of int
  | Cond_jump of int
  | Jump_indirect
  | Call_direct of int
  | Call_indirect
  | Return
  | Stop

let flow ~addr ~len (i : Insn.t) =
  let next = addr + len in
  match i with
  | Jmp rel -> Jump (next + rel)
  | Jcc (_, rel) -> Cond_jump (next + rel)
  | Jmp_ind _ -> Jump_indirect
  | Call rel -> Call_direct (next + rel)
  | Call_ind _ -> Call_indirect
  | Ret -> Return
  | Halt -> Stop
  | Nop | Mov_rr _ | Mov_ri _ | Load _ | Store _ | Lea _ | Add _ | Sub _
  | Mul _ | And_ _ | Or_ _ | Xor _ | Shl _ | Shr _ | Add_ri _ | Cmp_rr _
  | Cmp_ri _ | Push _ | Pop _ | Enter _ | Leave | Load_idx _ ->
    Fallthrough

let is_control_flow (i : Insn.t) =
  match i with
  | Jmp _ | Jcc _ | Jmp_ind _ | Call _ | Call_ind _ | Ret | Halt -> true
  | Nop | Mov_rr _ | Mov_ri _ | Load _ | Store _ | Lea _ | Add _ | Sub _
  | Mul _ | And_ _ | Or_ _ | Xor _ | Shl _ | Shr _ | Add_ri _ | Cmp_rr _
  | Cmp_ri _ | Push _ | Pop _ | Enter _ | Leave | Load_idx _ ->
    false

let is_stack_teardown (i : Insn.t) = match i with Leave -> true | _ -> false

let set = Reg.Set.of_list

let defs (i : Insn.t) =
  match i with
  | Mov_rr (d, _) | Mov_ri (d, _) | Load (d, _, _) | Lea (d, _) -> set [ d ]
  | Add (d, _) | Sub (d, _) | Mul (d, _) | And_ (d, _) | Or_ (d, _)
  | Xor (d, _) | Shl (d, _) | Shr (d, _) | Add_ri (d, _) ->
    set [ d ]
  | Load_idx (d, _, _, _) -> set [ d ]
  | Pop d -> set [ d; Reg.sp ]
  | Push _ -> set [ Reg.sp ]
  | Enter _ -> set [ Reg.sp; Reg.fp ]
  | Leave -> set [ Reg.sp; Reg.fp ]
  | Call _ | Call_ind _ ->
    (* Calls clobber the return-value register and scratch registers per the
       synthetic ABI: r0 (return) and the argument registers. *)
    set [ Reg.r0; Reg.r1; Reg.r2; Reg.r3; Reg.r4; Reg.r5 ]
  | Nop | Halt | Store _ | Cmp_rr _ | Cmp_ri _ | Jmp _ | Jcc _ | Jmp_ind _
  | Ret ->
    Reg.Set.empty

let uses (i : Insn.t) =
  match i with
  | Mov_rr (_, s) -> set [ s ]
  | Load (_, base, _) -> set [ base ]
  | Store (base, _, s) -> set [ base; s ]
  | Add (d, s) | Sub (d, s) | Mul (d, s) | And_ (d, s) | Or_ (d, s)
  | Xor (d, s) ->
    set [ d; s ]
  | Shl (d, _) | Shr (d, _) | Add_ri (d, _) -> set [ d ]
  | Cmp_rr (x, y) -> set [ x; y ]
  | Cmp_ri (x, _) -> set [ x ]
  | Push s -> set [ s; Reg.sp ]
  | Pop _ -> set [ Reg.sp ]
  | Enter _ -> set [ Reg.sp; Reg.fp ]
  | Leave -> set [ Reg.fp ]
  | Jmp_ind s | Call_ind s -> set [ s ]
  | Load_idx (_, base, idx, _) -> set [ base; idx ]
  | Call _ -> set [ Reg.r1; Reg.r2; Reg.r3 ]
  | Ret -> set [ Reg.r0; Reg.sp ]
  | Nop | Halt | Mov_ri _ | Lea _ | Jmp _ | Jcc _ -> Reg.Set.empty

let reads_mem (i : Insn.t) =
  match i with
  | Load _ | Load_idx _ | Pop _ | Leave | Ret -> true
  | _ -> false

let writes_mem (i : Insn.t) =
  match i with Store _ | Push _ | Call _ | Call_ind _ | Enter _ -> true | _ -> false

let sp_delta (i : Insn.t) =
  match i with
  | Push _ -> Some (-8)
  | Pop _ -> Some 8
  | Enter n -> Some (-(8 + n))
  | Call _ | Call_ind _ -> Some 0 (* balanced across the call *)
  | Leave -> None (* restores sp from fp: not a constant delta *)
  | _ -> Some 0
