(** Registers of the synthetic ISA.

    Sixteen general-purpose registers [r0]-[r15]. Conventions mirror common
    ABIs so the generated code reads naturally: [r0] carries return values,
    [r1]-[r5] arguments, [r14] is the frame pointer and [r15] the stack
    pointer. The small dense encoding lets register sets be represented as
    16-bit masks in the liveness analysis. *)

type t = private int

val of_int : int -> t
(** Raises [Invalid_argument] unless the index is in [0, 15]. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int

val r0 : t
val r1 : t
val r2 : t
val r3 : t
val r4 : t
val r5 : t

val fp : t
(** Frame pointer, [r14]. *)

val sp : t
(** Stack pointer, [r15]. *)

val count : int
(** Number of registers, 16. *)

val name : t -> string
val pp : Format.formatter -> t -> unit

(** Register sets as bitmasks, used by the data-flow analyses. *)
module Set : sig
  type reg = t
  type t = int

  val empty : t
  val add : reg -> t -> t
  val mem : reg -> t -> bool
  val union : t -> t -> t
  val diff : t -> t -> t
  val inter : t -> t -> t
  val cardinal : t -> int
  val of_list : reg list -> t
end
