type t = int

let count = 16

let of_int i =
  if i < 0 || i >= count then invalid_arg "Reg.of_int";
  i

let to_int r = r
let equal = Int.equal
let compare = Int.compare
let r0 = 0
let r1 = 1
let r2 = 2
let r3 = 3
let r4 = 4
let r5 = 5
let fp = 14
let sp = 15

let name r =
  match r with 14 -> "fp" | 15 -> "sp" | _ -> "r" ^ string_of_int r

let pp fmt r = Format.pp_print_string fmt (name r)

module Set = struct
  type reg = int
  type nonrec t = int

  let empty = 0
  let add r s = s lor (1 lsl r)
  let mem r s = s land (1 lsl r) <> 0
  let union = ( lor )
  let diff a b = a land lnot b
  let inter = ( land )

  let cardinal s =
    let rec go s acc = if s = 0 then acc else go (s lsr 1) (acc + (s land 1)) in
    go s 0

  let of_list rs = List.fold_left (fun s r -> add r s) empty rs
end
