(** Architecture-independent queries on instructions.

    This mirrors Dyninst's instructionAPI role in the paper (Section 2.2):
    the CFG construction and the data-flow analyses never pattern-match on
    encodings, only on these queries. *)

type flow =
  | Fallthrough  (** ordinary instruction; control continues at next pc *)
  | Jump of int  (** unconditional direct jump to the given address *)
  | Cond_jump of int  (** conditional jump; taken target given *)
  | Jump_indirect  (** target computed at run time (jump tables) *)
  | Call_direct of int
  | Call_indirect
  | Return
  | Stop  (** trap/halt: no successor *)

val flow : addr:int -> len:int -> Insn.t -> flow
(** Control-flow classification with absolute targets resolved from the
    instruction's address and length. *)

val is_control_flow : Insn.t -> bool
(** True for every instruction that ends a basic block. *)

val is_stack_teardown : Insn.t -> bool
(** True for [Leave] — the frame tear-down that the tail-call heuristic
    looks for just before a branch (paper Section 2.1). *)

val defs : Insn.t -> Reg.Set.t
(** Registers written. *)

val uses : Insn.t -> Reg.Set.t
(** Registers read. *)

val reads_mem : Insn.t -> bool
val writes_mem : Insn.t -> bool

val sp_delta : Insn.t -> int option
(** Effect on the stack pointer in bytes ([Push] = -8, [Pop] = +8, [Enter n]
    = -(8+n), [Leave] restores the frame). [None] when the effect is not a
    compile-time constant. Used by the stack-height analysis. *)
