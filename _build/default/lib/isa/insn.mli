(** Instructions of the synthetic ISA.

    A variable-length byte-encoded instruction set carrying every
    control-flow construct the paper's CFG construction must understand:
    direct, conditional and indirect jumps; direct and indirect calls;
    returns; a trap; frame setup and tear-down ([Enter]/[Leave], the signal
    used by the tail-call heuristics); and the address arithmetic from which
    jump tables are built ([Lea] for the table base, [Load_idx] for the
    scaled table fetch, [Cmp_ri]+[Jcc] for the bounds check).

    Branch displacement operands are relative to the address immediately
    after the instruction, as on x86. *)

type cond = Eq | Ne | Lt | Ge | Gt | Le

type t =
  | Nop
  | Halt  (** trap; execution cannot continue past it *)
  | Mov_rr of Reg.t * Reg.t  (** rd <- rs *)
  | Mov_ri of Reg.t * int  (** rd <- imm32 *)
  | Load of Reg.t * Reg.t * int  (** rd <- mem\[rs + disp16\] *)
  | Store of Reg.t * int * Reg.t  (** mem\[rd + disp16\] <- rs *)
  | Lea of Reg.t * int  (** rd <- next_pc + disp32 (pc-relative address) *)
  | Add of Reg.t * Reg.t
  | Sub of Reg.t * Reg.t
  | Mul of Reg.t * Reg.t
  | And_ of Reg.t * Reg.t
  | Or_ of Reg.t * Reg.t
  | Xor of Reg.t * Reg.t
  | Shl of Reg.t * int  (** shift left by imm8 *)
  | Shr of Reg.t * int
  | Add_ri of Reg.t * int  (** rd <- rd + imm32 *)
  | Cmp_rr of Reg.t * Reg.t  (** set flags from rs1 - rs2 *)
  | Cmp_ri of Reg.t * int  (** set flags from rs - imm32 *)
  | Push of Reg.t
  | Pop of Reg.t
  | Enter of int  (** push fp; fp <- sp; sp <- sp - imm16 *)
  | Leave  (** sp <- fp; pop fp (stack tear-down) *)
  | Jmp of int  (** unconditional, rel32 *)
  | Jcc of cond * int  (** conditional, rel32 *)
  | Jmp_ind of Reg.t  (** indirect jump (jump tables) *)
  | Call of int  (** direct call, rel32 *)
  | Call_ind of Reg.t
  | Ret
  | Load_idx of Reg.t * Reg.t * Reg.t * int
      (** rd <- mem\[rs + ri * scale\]; scale in {1,2,4,8}. The jump-table
          fetch idiom. *)

val equal : t -> t -> bool
val cond_name : cond -> string
val mnemonic : t -> string

val pp : Format.formatter -> t -> unit
(** Render in an objdump-like syntax, e.g. [add r1, r2]. *)

val to_string : t -> string
