(** Binary encoding and decoding of instructions.

    Instructions occupy 1 to 6 bytes, little-endian operands. [decode] is a
    pure function of the byte buffer, which is what makes the paper's
    lock-free linear parsing possible: any number of threads can decode
    overlapping address ranges with no synchronization (Section 5.2,
    Invariant 2 discussion). *)

val encode : Buffer.t -> Insn.t -> unit
(** Append the encoding of an instruction. Raises [Invalid_argument] if an
    operand is out of range (e.g. a displacement that does not fit). *)

val encoded_length : Insn.t -> int
(** Length in bytes of the encoding, without encoding. *)

val decode : Bytes.t -> pos:int -> (Insn.t * int) option
(** [decode buf ~pos] decodes the instruction starting at byte [pos],
    returning it with its length, or [None] if the bytes do not form a valid
    instruction (invalid opcode, bad register, truncated operand). *)

val max_length : int
(** Upper bound on instruction length (6). *)
