lib/isa/semantics.ml: Insn Reg
