lib/isa/semantics.mli: Insn Reg
