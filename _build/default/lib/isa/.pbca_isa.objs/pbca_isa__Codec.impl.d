lib/isa/codec.ml: Buffer Bytes Char Insn Option Reg
