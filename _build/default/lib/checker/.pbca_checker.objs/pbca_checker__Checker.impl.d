lib/checker/checker.ml: Atomic Format Hashtbl List Pbca_binfmt Pbca_codegen Pbca_concurrent Pbca_core Pbca_isa Printf String
