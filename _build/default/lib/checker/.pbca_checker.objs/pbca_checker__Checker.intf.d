lib/checker/checker.mli: Format Pbca_codegen Pbca_core
