(** Natural-loop identification and nesting (analysis capability AC2).

    Back edges are edges whose target dominates their source; each defines
    a natural loop (the target is the header). Loops with the same header
    are merged. Nesting depth is the number of distinct loop bodies a block
    belongs to — hpcstruct attributes instructions to loop constructs, and
    BinFeat uses nesting levels as features. *)

type loop = {
  header : int;  (** block index of the loop header *)
  body : int list;  (** block indices, including the header *)
  parent : int option;  (** index into [loops] of the innermost enclosing loop *)
}

type t = {
  loops : loop array;
  depth : int array;  (** nesting depth per block; 0 = not in any loop *)
}

val compute : Func_view.t -> Dominators.t -> t
val loop_count : t -> int
val max_depth : t -> int
