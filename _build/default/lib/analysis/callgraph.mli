(** Whole-program call graph over a finalized CFG.

    Nodes are functions; an edge [f -> g] exists when some block in [f]'s
    boundary ends with a direct call or tail call to [g]'s entry (indirect
    calls contribute edges to every function whose address appears in the
    image's function-pointer data when [resolve_indirect] is set). The
    forensic and vulnerability-search applications the paper's discussion
    section mentions consume exactly this structure. *)

type t = {
  funcs : Pbca_core.Cfg.func array;  (** sorted by entry *)
  index_of : (int, int) Hashtbl.t;  (** entry address -> index *)
  callees : int list array;
  callers : int list array;
  tail_edges : (int * int) list;  (** (caller, callee) via tail calls *)
}

val build : ?resolve_indirect:bool -> Pbca_core.Cfg.t -> t
val n_funcs : t -> int
val find : t -> int -> int option
(** Index of the function whose entry is the given address. *)

val reachable_from : t -> int -> bool array
(** Functions reachable (transitively, via calls and tail calls) from the
    given function index. *)

val sccs : t -> int list list
(** Strongly connected components (Tarjan), largest call cycles first —
    mutual recursion shows up here. *)

val depth_from : t -> int -> int array
(** BFS call depth from a root index; [-1] = unreachable. *)

val leaf_functions : t -> int list
(** Functions that call nothing. *)
