module Reg = Pbca_isa.Reg
module Semantics = Pbca_isa.Semantics

type criterion = { at : int; block : int; regs : Reg.Set.t }
type slice = { insns : (int * Pbca_isa.Insn.t) list; complete : bool }

(* Worklist over (block, live-register-set) states; within a block, walk
   instructions backward transferring the wanted set. *)
let backward g (fv : Func_view.t) crit =
  let collected : (int, Pbca_isa.Insn.t) Hashtbl.t = Hashtbl.create 32 in
  let complete = ref true in
  (* most-demanded set seen per block, to bound re-visits *)
  let seen : (int, Reg.Set.t) Hashtbl.t = Hashtbl.create 16 in
  let queue = Queue.create () in
  let enqueue block wanted =
    if wanted <> Reg.Set.empty then begin
      let prev = Option.value (Hashtbl.find_opt seen block) ~default:Reg.Set.empty in
      let merged = Reg.Set.union prev wanted in
      if merged <> prev then begin
        Hashtbl.replace seen block merged;
        Queue.add (block, wanted) queue
      end
    end
  in
  (* walk one block backward from [upto] (exclusive; max_int = whole block),
     returning the wanted set at block entry *)
  let walk_block block upto wanted =
    let insns = List.rev (Func_view.insns g fv block) in
    List.fold_left
      (fun wanted (a, insn, _) ->
        if a >= upto then wanted
        else
          let defs = Semantics.defs insn in
          if Reg.Set.inter defs wanted <> Reg.Set.empty then begin
            Hashtbl.replace collected a insn;
            if Semantics.reads_mem insn then complete := false;
            (* the instruction's inputs become wanted; its outputs stop *)
            Reg.Set.union (Semantics.uses insn) (Reg.Set.diff wanted defs)
          end
          else wanted)
      wanted insns
  in
  let at_entry = walk_block crit.block crit.at crit.regs in
  enqueue crit.block Reg.Set.empty (* mark visited *);
  Hashtbl.replace seen crit.block crit.regs;
  let propagate block wanted =
    if wanted <> Reg.Set.empty then
      match fv.pred.(block) with
      | [] ->
        (* registers still wanted at the function entry: arguments or
           untracked state *)
        if block = Func_view.entry_index fv then ()
        else complete := false
      | preds -> List.iter (fun p -> enqueue p wanted) preds
  in
  propagate crit.block at_entry;
  while not (Queue.is_empty queue) do
    let block, wanted = Queue.pop queue in
    if wanted <> Reg.Set.empty then begin
      let at_entry = walk_block block max_int wanted in
      propagate block at_entry
    end
  done;
  let insns =
    Hashtbl.fold (fun a i acc -> (a, i) :: acc) collected []
    |> List.sort compare
  in
  { insns; complete = !complete }

let criterion_of_terminator g (fv : Func_view.t) block =
  match Pbca_core.Disasm.terminator g fv.blocks.(block) with
  | Some (a, insn, _) -> Some { at = a; block; regs = Semantics.uses insn }
  | None -> None
