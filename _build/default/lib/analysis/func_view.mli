(** Per-function array view of a finalized CFG.

    The intra-procedural analyses (dominators, loops, liveness, stack
    heights) all want dense block indices and per-function successor and
    predecessor lists restricted to the function's boundary. The CFG is
    read-only after finalization (paper Section 7.2), so views can be built
    for different functions from any number of threads. *)

type t = {
  func : Pbca_core.Cfg.func;
  blocks : Pbca_core.Cfg.block array;  (** sorted by start; index 0 = entry *)
  index_of : (int, int) Hashtbl.t;  (** block start -> index *)
  succ : int list array;  (** intra-procedural successors *)
  pred : int list array;
}

val make : Pbca_core.Cfg.t -> Pbca_core.Cfg.func -> t
val n_blocks : t -> int
val entry_index : t -> int
val insns : Pbca_core.Cfg.t -> t -> int -> (int * Pbca_isa.Insn.t * int) list
(** Instructions of block [i]. *)
