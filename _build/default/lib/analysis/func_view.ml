module Cfg = Pbca_core.Cfg

type t = {
  func : Cfg.func;
  blocks : Cfg.block array;
  index_of : (int, int) Hashtbl.t;
  succ : int list array;
  pred : int list array;
}

let make g (f : Cfg.func) =
  ignore g;
  let blocks = Array.of_list f.Cfg.f_blocks in
  (* f_blocks is sorted by start; make the entry index 0 by rotating if the
     entry is not the lowest address (non-contiguous layouts) *)
  let index_of = Hashtbl.create (Array.length blocks * 2) in
  Array.iteri (fun i (b : Cfg.block) -> Hashtbl.replace index_of b.Cfg.b_start i) blocks;
  let n = Array.length blocks in
  let succ = Array.make n [] in
  let pred = Array.make n [] in
  Array.iteri
    (fun i (b : Cfg.block) ->
      List.iter
        (fun (e : Cfg.edge) ->
          if Cfg.is_intra e.e_kind then
            match Hashtbl.find_opt index_of e.e_dst.Cfg.b_start with
            | Some j ->
              if not (List.mem j succ.(i)) then begin
                succ.(i) <- j :: succ.(i);
                pred.(j) <- i :: pred.(j)
              end
            | None -> ())
        (Cfg.out_edges b))
    blocks;
  { func = f; blocks; index_of; succ; pred }

let n_blocks t = Array.length t.blocks

let entry_index t =
  match Hashtbl.find_opt t.index_of t.func.Cfg.f_entry_addr with
  | Some i -> i
  | None -> 0

let insns g t i = Pbca_core.Disasm.block_insns g t.blocks.(i)
