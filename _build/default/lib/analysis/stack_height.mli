(** Stack-height analysis (Dyninst's StackAnalysis in paper Listing 7).

    Forward data-flow of the stack pointer's offset from its value at
    function entry. The lattice per block is [Bottom] (unvisited), a
    constant height, or [Top] (conflicting heights or a non-constant
    adjustment such as [Leave]). Used by the tail-call heuristics of real
    parsers and here by BinFeat as a data-flow feature. *)

type height = Bottom | Height of int | Top

type t = {
  at_entry : height array;  (** per block *)
  at_exit : height array;
}

val compute : Pbca_core.Cfg.t -> Func_view.t -> t

val join : height -> height -> height
(** Lattice join: [Bottom] is the identity, conflicting constants go to
    [Top]. *)

val pp_height : Format.formatter -> height -> unit
