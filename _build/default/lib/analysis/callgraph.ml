module Cfg = Pbca_core.Cfg

type t = {
  funcs : Cfg.func array;
  index_of : (int, int) Hashtbl.t;
  callees : int list array;
  callers : int list array;
  tail_edges : (int * int) list;
}

let build ?(resolve_indirect = false) (g : Cfg.t) =
  ignore resolve_indirect;
  let funcs = Array.of_list (Cfg.funcs_list g) in
  let n = Array.length funcs in
  let index_of = Hashtbl.create (2 * n) in
  Array.iteri
    (fun i (f : Cfg.func) -> Hashtbl.replace index_of f.Cfg.f_entry_addr i)
    funcs;
  let callees = Array.make n [] in
  let callers = Array.make n [] in
  let tail_edges = ref [] in
  Array.iteri
    (fun i (f : Cfg.func) ->
      List.iter
        (fun (b : Cfg.block) ->
          List.iter
            (fun (e : Cfg.edge) ->
              match e.e_kind with
              | Cfg.Call | Cfg.Tail_call -> (
                match Hashtbl.find_opt index_of e.e_dst.Cfg.b_start with
                | Some j ->
                  if not (List.mem j callees.(i)) then begin
                    callees.(i) <- j :: callees.(i);
                    callers.(j) <- i :: callers.(j)
                  end;
                  if e.e_kind = Cfg.Tail_call then
                    tail_edges := (i, j) :: !tail_edges
                | None -> ())
              | _ -> ())
            (Cfg.out_edges b))
        f.Cfg.f_blocks)
    funcs;
  { funcs; index_of; callees; callers; tail_edges = !tail_edges }

let n_funcs t = Array.length t.funcs
let find t addr = Hashtbl.find_opt t.index_of addr

let reachable_from t root =
  let n = n_funcs t in
  let seen = Array.make n false in
  let rec visit i =
    if i >= 0 && i < n && not seen.(i) then begin
      seen.(i) <- true;
      List.iter visit t.callees.(i)
    end
  in
  visit root;
  seen

let depth_from t root =
  let n = n_funcs t in
  let depth = Array.make n (-1) in
  let q = Queue.create () in
  if root >= 0 && root < n then begin
    depth.(root) <- 0;
    Queue.add root q
  end;
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    List.iter
      (fun j ->
        if depth.(j) = -1 then begin
          depth.(j) <- depth.(i) + 1;
          Queue.add j q
        end)
      t.callees.(i)
  done;
  depth

(* Tarjan's strongly connected components. *)
let sccs t =
  let n = n_funcs t in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      t.callees.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      out := pop [] :: !out
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  List.sort
    (fun a b -> compare (List.length b) (List.length a))
    !out

let leaf_functions t =
  let out = ref [] in
  Array.iteri (fun i cs -> if cs = [] then out := i :: !out) t.callees;
  List.rev !out
