(** Dominator trees (Cooper-Harvey-Kennedy "a simple, fast dominance
    algorithm"). Input is a {!Func_view}; blocks unreachable from the entry
    get [idom = -1]. Pure; thread-safe across functions. *)

type t = {
  idom : int array;  (** immediate dominator index, -1 for entry/unreachable *)
  rpo : int array;  (** reverse-postorder positions *)
}

val compute : Func_view.t -> t
val dominates : t -> int -> int -> bool
(** [dominates t a b]: block [a] dominates block [b] (reflexive). *)
