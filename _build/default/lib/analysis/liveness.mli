(** Register liveness (analysis capability AC6).

    Classic backward may-analysis over a function view, with register sets
    as 16-bit masks: live-in(b) = use(b) ∪ (live-out(b) \ def(b)),
    live-out(b) = ∪ live-in(succ). BinFeat extracts live-register counts as
    data-flow features; the paper notes this stage has the highest time
    complexity of the feature extractors (Section 8.3). *)

type t = {
  live_in : Pbca_isa.Reg.Set.t array;
  live_out : Pbca_isa.Reg.Set.t array;
}

val compute : Pbca_core.Cfg.t -> Func_view.t -> t

val live_at :
  Pbca_core.Cfg.t -> Func_view.t -> t -> int -> int -> Pbca_isa.Reg.Set.t
(** [live_at g fv t block_idx addr] — registers live just before the
    instruction at [addr] within the block. *)

val avg_live : t -> float
