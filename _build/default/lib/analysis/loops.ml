type loop = { header : int; body : int list; parent : int option }
type t = { loops : loop array; depth : int array }

let compute (fv : Func_view.t) (dom : Dominators.t) =
  let n = Func_view.n_blocks fv in
  (* back edges and per-header loop bodies *)
  let bodies : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  for src = 0 to n - 1 do
    List.iter
      (fun dst ->
        if Dominators.dominates dom dst src then begin
          (* natural loop of (src -> dst): dst + all blocks reaching src
             without passing through dst *)
          let body =
            match Hashtbl.find_opt bodies dst with
            | Some b -> b
            | None ->
              let b = Hashtbl.create 8 in
              Hashtbl.replace b dst ();
              Hashtbl.replace bodies dst b;
              b
          in
          let rec pull x =
            if not (Hashtbl.mem body x) then begin
              Hashtbl.replace body x ();
              List.iter pull fv.pred.(x)
            end
          in
          pull src
        end)
      fv.succ.(src)
  done;
  let headers = Hashtbl.fold (fun h _ acc -> h :: acc) bodies [] in
  let headers = List.sort compare headers in
  let loops_list =
    List.map
      (fun h ->
        let body = Hashtbl.find bodies h in
        let members = Hashtbl.fold (fun b () acc -> b :: acc) body [] in
        (h, List.sort compare members))
      headers
  in
  (* nesting: loop A encloses B if A contains B's header and A <> B *)
  let arr = Array.of_list loops_list in
  let contains (_, body) x = List.mem x body in
  let parent_of i =
    let _, body_i = arr.(i) in
    let candidates =
      Array.to_list
        (Array.mapi
           (fun j l ->
             if j <> i && contains l (fst arr.(i)) then
               Some (j, List.length (snd l))
             else None)
           arr)
      |> List.filter_map (fun x -> x)
    in
    ignore body_i;
    (* innermost enclosing = smallest containing body *)
    match List.sort (fun (_, a) (_, b) -> compare a b) candidates with
    | (j, _) :: _ -> Some j
    | [] -> None
  in
  let loops =
    Array.mapi
      (fun i (h, body) -> { header = h; body; parent = parent_of i })
      arr
  in
  let depth = Array.make n 0 in
  Array.iter
    (fun l -> List.iter (fun b -> depth.(b) <- depth.(b) + 1) l.body)
    loops;
  { loops; depth }

let loop_count t = Array.length t.loops
let max_depth t = Array.fold_left max 0 t.depth
