module Semantics = Pbca_isa.Semantics

type height = Bottom | Height of int | Top
type t = { at_entry : height array; at_exit : height array }

let join a b =
  match (a, b) with
  | Bottom, x | x, Bottom -> x
  | Top, _ | _, Top -> Top
  | Height x, Height y -> if x = y then Height x else Top

let transfer g fv i h =
  List.fold_left
    (fun h (_, insn, _) ->
      match h with
      | Bottom | Top -> h
      | Height v -> (
        match Semantics.sp_delta insn with
        | Some d -> Height (v + d)
        | None -> Top))
    h
    (Func_view.insns g fv i)

let compute g (fv : Func_view.t) =
  let n = Func_view.n_blocks fv in
  let at_entry = Array.make n Bottom in
  let at_exit = Array.make n Bottom in
  if n > 0 then begin
    let entry = Func_view.entry_index fv in
    at_entry.(entry) <- Height 0;
    let changed = ref true in
    while !changed do
      changed := false;
      Pbca_simsched.Trace.tick g.Pbca_core.Cfg.trace n;
      for i = 0 to n - 1 do
        let inh =
          if i = entry then Height 0
          else
            List.fold_left
              (fun acc p -> join acc at_exit.(p))
              Bottom fv.pred.(i)
        in
        let outh = transfer g fv i inh in
        if inh <> at_entry.(i) || outh <> at_exit.(i) then begin
          at_entry.(i) <- inh;
          at_exit.(i) <- outh;
          changed := true
        end
      done
    done
  end;
  { at_entry; at_exit }

let pp_height fmt = function
  | Bottom -> Format.pp_print_string fmt "_"
  | Top -> Format.pp_print_string fmt "T"
  | Height h -> Format.fprintf fmt "%d" h
