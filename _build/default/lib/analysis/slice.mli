(** Intra-procedural backward slicing.

    The general form of the technique the paper's jump-table analysis is
    built on (Section 2.1: "backward slicing to identify the instructions
    involved in the target calculation"): starting from a register use at a
    program point, collect every instruction whose definitions can flow
    into it, following intra-procedural edges backward through the function
    view. BinFeat-style tools use slices as features; the core parser keeps
    its own specialized slicer ({!Pbca_core.Jump_table}) tuned for table
    idioms. *)

type criterion = {
  at : int;  (** instruction address *)
  block : int;  (** block index within the view *)
  regs : Pbca_isa.Reg.Set.t;  (** registers of interest just before [at] *)
}

type slice = {
  insns : (int * Pbca_isa.Insn.t) list;  (** in ascending address order *)
  complete : bool;
      (** false when the dependence chase left the function or hit a memory
          load whose source is untracked *)
}

val backward : Pbca_core.Cfg.t -> Func_view.t -> criterion -> slice

val criterion_of_terminator :
  Pbca_core.Cfg.t -> Func_view.t -> int -> criterion option
(** Slice criterion for a block's terminating instruction (its uses), e.g.
    the jump register of an indirect jump. *)
