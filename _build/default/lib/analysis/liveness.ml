module Reg = Pbca_isa.Reg
module Semantics = Pbca_isa.Semantics

type t = { live_in : Reg.Set.t array; live_out : Reg.Set.t array }

let block_use_def g fv i =
  (* compute use (upward-exposed) and def sets in forward order *)
  let use = ref Reg.Set.empty and def = ref Reg.Set.empty in
  List.iter
    (fun (_, insn, _) ->
      let u = Semantics.uses insn and d = Semantics.defs insn in
      use := Reg.Set.union !use (Reg.Set.diff u !def);
      def := Reg.Set.union !def d)
    (Func_view.insns g fv i);
  (!use, !def)

let compute g (fv : Func_view.t) =
  let n = Func_view.n_blocks fv in
  let use = Array.make n Reg.Set.empty in
  let def = Array.make n Reg.Set.empty in
  for i = 0 to n - 1 do
    let u, d = block_use_def g fv i in
    use.(i) <- u;
    def.(i) <- d
  done;
  let live_in = Array.make n Reg.Set.empty in
  let live_out = Array.make n Reg.Set.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    (* each sweep visits every block: the fixpoint is superlinear in the
       function size, which is what makes data-flow extraction dominated by
       the largest functions (paper Section 8.3) *)
    Pbca_simsched.Trace.tick g.Pbca_core.Cfg.trace n;
    for i = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> Reg.Set.union acc live_in.(s))
          Reg.Set.empty fv.succ.(i)
      in
      let inn = Reg.Set.union use.(i) (Reg.Set.diff out def.(i)) in
      if out <> live_out.(i) || inn <> live_in.(i) then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  { live_in; live_out }

let live_at g fv t i addr =
  (* walk the block backward from its end to [addr] *)
  let insns = List.rev (Func_view.insns g fv i) in
  let rec go live = function
    | [] -> live
    | (a, insn, _) :: rest ->
      let live =
        Reg.Set.union (Semantics.uses insn)
          (Reg.Set.diff live (Semantics.defs insn))
      in
      if a = addr then live else go live rest
  in
  go t.live_out.(i) insns

let avg_live t =
  let n = Array.length t.live_in in
  if n = 0 then 0.0
  else
    let sum =
      Array.fold_left (fun acc s -> acc + Pbca_isa.Reg.Set.cardinal s) 0 t.live_in
    in
    float_of_int sum /. float_of_int n
