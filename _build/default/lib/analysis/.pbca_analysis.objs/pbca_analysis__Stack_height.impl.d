lib/analysis/stack_height.ml: Array Format Func_view List Pbca_core Pbca_isa Pbca_simsched
