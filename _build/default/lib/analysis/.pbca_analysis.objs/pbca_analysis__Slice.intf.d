lib/analysis/slice.mli: Func_view Pbca_core Pbca_isa
