lib/analysis/func_view.ml: Array Hashtbl List Pbca_core
