lib/analysis/loops.mli: Dominators Func_view
