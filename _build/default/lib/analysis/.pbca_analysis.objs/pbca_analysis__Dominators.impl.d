lib/analysis/dominators.ml: Array Func_view List
