lib/analysis/callgraph.mli: Hashtbl Pbca_core
