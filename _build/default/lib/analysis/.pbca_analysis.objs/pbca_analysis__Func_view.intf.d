lib/analysis/func_view.mli: Hashtbl Pbca_core Pbca_isa
