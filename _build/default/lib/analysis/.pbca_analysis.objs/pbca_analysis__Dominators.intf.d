lib/analysis/dominators.mli: Func_view
