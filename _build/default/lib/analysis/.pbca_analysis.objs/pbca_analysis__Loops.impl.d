lib/analysis/loops.ml: Array Dominators Func_view Hashtbl List
