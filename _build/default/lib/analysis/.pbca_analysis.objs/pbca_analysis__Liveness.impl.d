lib/analysis/liveness.ml: Array Func_view List Pbca_core Pbca_isa Pbca_simsched
