lib/analysis/slice.ml: Array Func_view Hashtbl List Option Pbca_core Pbca_isa Queue
