lib/analysis/callgraph.ml: Array Hashtbl List Pbca_core Queue
