lib/analysis/stack_height.mli: Format Func_view Pbca_core
