lib/analysis/liveness.mli: Func_view Pbca_core Pbca_isa
