type t = { idom : int array; rpo : int array }

let compute (fv : Func_view.t) =
  let n = Func_view.n_blocks fv in
  let entry = Func_view.entry_index fv in
  let order = Array.make n (-1) in
  (* postorder DFS *)
  let po = ref [] in
  let mark = Array.make n false in
  let rec dfs i =
    if not mark.(i) then begin
      mark.(i) <- true;
      List.iter dfs fv.succ.(i);
      po := i :: !po
    end
  in
  if n > 0 then dfs entry;
  let rpo_list = !po in
  List.iteri (fun pos i -> order.(i) <- pos) rpo_list;
  let idom = Array.make n (-1) in
  if n > 0 then begin
    idom.(entry) <- entry;
    let intersect a b =
      let a = ref a and b = ref b in
      while !a <> !b do
        while order.(!a) > order.(!b) && !a <> -1 do
          a := idom.(!a)
        done;
        while order.(!b) > order.(!a) && !b <> -1 do
          b := idom.(!b)
        done
      done;
      !a
    in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun i ->
          if i <> entry then begin
            let preds =
              List.filter (fun p -> idom.(p) <> -1 || p = entry) fv.pred.(i)
            in
            match List.filter (fun p -> idom.(p) <> -1) preds with
            | [] -> ()
            | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(i) <> new_idom then begin
                idom.(i) <- new_idom;
                changed := true
              end
          end)
        rpo_list
    done;
    idom.(entry) <- -1
  end;
  { idom; rpo = order }

let dominates t a b =
  let rec up x = if x = -1 then false else x = a || up t.idom.(x) in
  a = b || up t.idom.(b)
