(** Binary min-heap on [(key, payload)] pairs, ordered by key then payload
    (both ints), giving the replay scheduler a deterministic tie-break. *)

type t

val create : unit -> t
val push : t -> key:int -> payload:int -> unit
val pop : t -> (int * int) option
val peek : t -> (int * int) option
val is_empty : t -> bool
val length : t -> int
