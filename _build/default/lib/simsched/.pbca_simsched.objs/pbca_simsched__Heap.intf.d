lib/simsched/heap.mli:
