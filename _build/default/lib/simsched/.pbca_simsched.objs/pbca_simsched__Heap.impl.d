lib/simsched/heap.ml: Array
