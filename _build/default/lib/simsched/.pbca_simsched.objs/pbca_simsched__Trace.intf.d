lib/simsched/trace.mli:
