lib/simsched/trace.ml: Atomic Domain List Pbca_concurrent
