lib/simsched/replay.ml: Array Hashtbl Heap List Option Trace
