lib/simsched/replay.mli: Trace
