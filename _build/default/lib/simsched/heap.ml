type t = {
  mutable keys : int array;
  mutable payloads : int array;
  mutable size : int;
}

let create () = { keys = Array.make 16 0; payloads = Array.make 16 0; size = 0 }

let less t i j =
  t.keys.(i) < t.keys.(j)
  || (t.keys.(i) = t.keys.(j) && t.payloads.(i) < t.payloads.(j))

let swap t i j =
  let k = t.keys.(i) and p = t.payloads.(i) in
  t.keys.(i) <- t.keys.(j);
  t.payloads.(i) <- t.payloads.(j);
  t.keys.(j) <- k;
  t.payloads.(j) <- p

let grow t =
  let n = Array.length t.keys * 2 in
  let keys = Array.make n 0 and payloads = Array.make n 0 in
  Array.blit t.keys 0 keys 0 t.size;
  Array.blit t.payloads 0 payloads 0 t.size;
  t.keys <- keys;
  t.payloads <- payloads

let push t ~key ~payload =
  if t.size = Array.length t.keys then grow t;
  t.keys.(t.size) <- key;
  t.payloads.(t.size) <- payload;
  t.size <- t.size + 1;
  let i = ref (t.size - 1) in
  while !i > 0 && less t !i ((!i - 1) / 2) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let peek t = if t.size = 0 then None else Some (t.keys.(0), t.payloads.(0))

let pop t =
  if t.size = 0 then None
  else begin
    let top = (t.keys.(0), t.payloads.(0)) in
    t.size <- t.size - 1;
    t.keys.(0) <- t.keys.(t.size);
    t.payloads.(0) <- t.payloads.(t.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && less t l !smallest then smallest := l;
      if r < t.size && less t r !smallest then smallest := r;
      if !smallest <> !i then begin
        swap t !i !smallest;
        i := !smallest
      end
      else continue := false
    done;
    Some top
  end

let is_empty t = t.size = 0
let length t = t.size
