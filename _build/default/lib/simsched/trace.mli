(** Task-DAG recording.

    The container this reproduction runs in has a single hardware core, so
    wall-clock scaling cannot be measured directly (the paper used 64- and
    72-thread machines). Instead, the parallel algorithms record their task
    structure while running: every task logs its cost in abstract work units
    (instructions decoded, slice steps, map operations) and its dependencies
    — the spawn point within the parent, and wake-ups such as "this
    call-fall-through could only be created once the callee's return status
    was known". {!Replay} then schedules the recorded DAG on P simulated
    threads. See DESIGN.md, substitution 3.

    Recording is thread-safe: each domain tracks its current task in
    domain-local storage; completed tasks are published to a concurrent
    bag. A disabled trace ({!disabled}) makes every operation a no-op, so
    production paths can be instrumented unconditionally. *)

type t

type dep = { dep_task : int; dep_offset : int }
(** Satisfied once task [dep_task] has executed [dep_offset] work units
    ([max_int] = completion). *)

val create : unit -> t
val disabled : t
val is_enabled : t -> bool

val capture : t -> dep option
(** Dependency on the calling task's current progress point: the thing to
    pass to a task spawned right now. [None] when recording is disabled or
    the caller is outside any task. *)

val run : t -> ?label:string -> deps:dep option list -> (unit -> 'a) -> 'a
(** [run t ~deps f] records [f]'s execution as one task. Nestable per domain
    (the inner task suspends the outer one's accounting). *)

val tick : t -> int -> unit
(** Add work units to the calling task. No-op outside a task. *)

type task = {
  id : int;
  label : string;
  cost : int;
  deps : dep list;
  epoch : int;  (** barrier epoch the task started in *)
}

val barrier : t -> unit
(** Record a full synchronization point: tasks recorded after the barrier
    cannot start, in replay, before every earlier task has finished. The
    parallel parser emits one per quiescence round, and sequential
    per-binary parsing in a corpus emits one per binary — modelling the
    phase-based synchronization whose cost the paper's methodology flags
    (Section 6.4, step 4). *)

val tasks : t -> task list
(** All completed tasks. Call after the parallel region has quiesced. *)

val total_work : t -> int
