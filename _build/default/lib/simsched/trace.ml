type dep = { dep_task : int; dep_offset : int }

type task = {
  id : int;
  label : string;
  cost : int;
  deps : dep list;
  epoch : int;
}

type active = { a_id : int; mutable a_cost : int }

type t = {
  enabled : bool;
  next_id : int Atomic.t;
  epoch : int Atomic.t;
  done_tasks : task Pbca_concurrent.Conc_bag.t;
  current : active list ref Domain.DLS.key;
      (* per-domain stack of active tasks *)
}

let make enabled =
  {
    enabled;
    next_id = Atomic.make 0;
    epoch = Atomic.make 0;
    done_tasks = Pbca_concurrent.Conc_bag.create ();
    current = Domain.DLS.new_key (fun () -> ref []);
  }

let barrier t = if t.enabled then Atomic.incr t.epoch

let create () = make true
let disabled = make false
let is_enabled t = t.enabled

let top t =
  match !(Domain.DLS.get t.current) with [] -> None | a :: _ -> Some a

let capture t =
  if not t.enabled then None
  else
    match top t with
    | None -> None
    | Some a -> Some { dep_task = a.a_id; dep_offset = a.a_cost }

let tick t n =
  if t.enabled then
    match top t with None -> () | Some a -> a.a_cost <- a.a_cost + n

let run t ?(label = "task") ~deps f =
  if not t.enabled then f ()
  else begin
    let id = Atomic.fetch_and_add t.next_id 1 in
    let epoch = Atomic.get t.epoch in
    let stack = Domain.DLS.get t.current in
    let a = { a_id = id; a_cost = 0 } in
    stack := a :: !stack;
    let finish () =
      stack := List.tl !stack;
      let deps = List.filter_map (fun d -> d) deps in
      Pbca_concurrent.Conc_bag.add t.done_tasks
        { id; label; cost = max 1 a.a_cost; deps; epoch }
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let tasks t = Pbca_concurrent.Conc_bag.to_list t.done_tasks

let total_work t =
  List.fold_left (fun acc (x : task) -> acc + x.cost) 0 (tasks t)
