type result = {
  makespan : int;
  total_work : int;
  critical_path : int;
  busy : float;
}

(* Tasks arrive with arbitrary ids (atomic counter across domains) and in
   bag order; normalize to dense indices sorted by id so replay is
   deterministic. *)
let normalize (tasks : Trace.task list) =
  let arr = Array.of_list tasks in
  Array.sort (fun (a : Trace.task) b -> compare a.id b.id) arr;
  let index = Hashtbl.create (Array.length arr) in
  Array.iteri (fun i (t : Trace.task) -> Hashtbl.replace index t.id i) arr;
  (arr, index)

let run_schedule ~threads (arr : Trace.task array) index =
  let n = Array.length arr in
  if n = 0 then (0, 0)
  else begin
    let start_time = Array.make n (-1) in
    let n_deps = Array.make n 0 in
    let dependents = Array.make n [] in
    (* dependency edges, dropping references to unknown tasks *)
    Array.iteri
      (fun i (t : Trace.task) ->
        List.iter
          (fun (d : Trace.dep) ->
            match Hashtbl.find_opt index d.dep_task with
            | Some j when j <> i ->
              n_deps.(i) <- n_deps.(i) + 1;
              dependents.(j) <- (i, d.dep_offset) :: dependents.(j)
            | _ -> ())
          t.deps)
      arr;
    (* avail.(i): earliest time all deps have made enough progress *)
    let avail = Array.make n 0 in
    let ready = Heap.create () in
    Array.iteri
      (fun i (t : Trace.task) ->
        ignore t;
        if n_deps.(i) = 0 then Heap.push ready ~key:avail.(i) ~payload:i)
      arr;
    let workers = Heap.create () in
    for w = 0 to threads - 1 do
      Heap.push workers ~key:0 ~payload:w
    done;
    let finish_time = ref 0 in
    let busy_units = ref 0 in
    let scheduled = ref 0 in
    while not (Heap.is_empty ready) do
      let r, i = Option.get (Heap.pop ready) in
      let free, w = Option.get (Heap.pop workers) in
      let s = max r free in
      start_time.(i) <- s;
      let e = s + arr.(i).cost in
      busy_units := !busy_units + arr.(i).cost;
      incr scheduled;
      finish_time := max !finish_time e;
      Heap.push workers ~key:e ~payload:w;
      (* release dependents *)
      List.iter
        (fun (j, off) ->
          let satisfied = s + min off arr.(i).cost in
          avail.(j) <- max avail.(j) satisfied;
          n_deps.(j) <- n_deps.(j) - 1;
          if n_deps.(j) = 0 then Heap.push ready ~key:avail.(j) ~payload:j)
        dependents.(i)
    done;
    (* dependency cycles (should not happen) leave tasks unscheduled; account
       for their work serially so the result is still conservative *)
    if !scheduled < n then
      Array.iteri
        (fun i (t : Trace.task) ->
          if start_time.(i) < 0 then finish_time := !finish_time + t.cost)
        arr;
    (!finish_time, !busy_units)
  end

(* Barriers split the trace into epochs simulated back to back: a task in a
   later epoch cannot start before every earlier epoch has drained.
   Cross-epoch dependencies are therefore satisfied by construction and
   dropped by [normalize] per epoch. *)
let simulate ?(bus = 0.04) ~threads tasks =
  let by_epoch : (int, Trace.task list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (t : Trace.task) ->
      match Hashtbl.find_opt by_epoch t.epoch with
      | Some l -> l := t :: !l
      | None -> Hashtbl.replace by_epoch t.epoch (ref [ t ]))
    tasks;
  let epochs =
    Hashtbl.fold (fun e l acc -> (e, !l) :: acc) by_epoch []
    |> List.sort compare
  in
  let makespan = ref 0 and critical_path = ref 0 and total_work = ref 0 in
  List.iter
    (fun (_, ts) ->
      let arr, index = normalize ts in
      total_work :=
        !total_work
        + Array.fold_left (fun acc (t : Trace.task) -> acc + t.cost) 0 arr;
      let work =
        Array.fold_left (fun acc (t : Trace.task) -> acc + t.cost) 0 arr
      in
      let m, _ = run_schedule ~threads arr index in
      let c, _ = run_schedule ~threads:(max 1 (Array.length arr)) arr index in
      (* shared-memory ceiling: with >1 thread the bus serializes a
         fraction of every unit of work *)
      let floor_units =
        if threads > 1 then int_of_float (bus *. float_of_int work) else 0
      in
      makespan := !makespan + max m floor_units;
      critical_path := !critical_path + max c floor_units)
    epochs;
  let busy =
    if !makespan = 0 || threads = 0 then 1.0
    else
      float_of_int !total_work
      /. (float_of_int !makespan *. float_of_int threads)
  in
  {
    makespan = !makespan;
    total_work = !total_work;
    critical_path = !critical_path;
    busy;
  }

let makespan ?bus ~threads t = (simulate ?bus ~threads (Trace.tasks t)).makespan

let speedup ?bus ~threads t =
  let r = simulate ?bus ~threads (Trace.tasks t) in
  if r.makespan = 0 then 1.0
  else float_of_int r.total_work /. float_of_int r.makespan
