(** Deterministic replay of a recorded task DAG on P simulated threads.

    Greedy non-preemptive list scheduling: when a simulated worker becomes
    free it takes the available task with the earliest availability time
    (ties broken by task id), where a task becomes available once each of
    its dependencies [(d, off)] has executed [off] of its work units. This
    models a work-conserving task pool — the same assumption behind
    OpenMP-task and work-stealing runtimes — so the resulting makespans
    reproduce the shape of the paper's scaling curves: Amdahl limits from
    serial segments, dependency stalls from non-returning-function chains,
    and tail effects from imbalanced task sizes. *)

type result = {
  makespan : int;  (** simulated completion time in work units *)
  total_work : int;
  critical_path : int;  (** makespan with unbounded threads *)
  busy : float;  (** worker utilization in [0, 1] *)
}

val simulate : ?bus:float -> threads:int -> Trace.task list -> result
(** [bus] models the shared memory system: every work unit consumes that
    fraction of a single shared resource, so an epoch cannot finish faster
    than [bus * total_work] regardless of thread count (speedups cap near
    [1 / bus]). Defaults to 0.04 — a ~25x ceiling, which is where the
    paper's best CFG-construction scaling lands on real hardware. Set to
    0.0 for the pure task-graph bound. *)

val makespan : ?bus:float -> threads:int -> Trace.t -> int
(** Convenience: simulate a trace's tasks. *)

val speedup : ?bus:float -> threads:int -> Trace.t -> float
(** [total_work / makespan(threads)] — speedup over a single thread running
    the same work. *)
