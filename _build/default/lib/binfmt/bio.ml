module W = struct
  type t = Buffer.t

  let create () = Buffer.create 4096
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

  let u16 b v =
    u8 b v;
    u8 b (v lsr 8)

  let u32 b v =
    u16 b v;
    u16 b (v lsr 16)

  let u64 b v =
    u32 b v;
    u32 b (v lsr 32)

  let str b s =
    u16 b (String.length s);
    Buffer.add_string b s

  let bytes b d =
    u32 b (Bytes.length d);
    Buffer.add_bytes b d

  let raw b d = Buffer.add_bytes b d
  let contents b = Buffer.to_bytes b
  let length b = Buffer.length b
end

module R = struct
  type t = { data : Bytes.t; mutable pos : int }

  exception Truncated

  let of_bytes data = { data; pos = 0 }
  let pos t = t.pos

  let seek t p =
    if p < 0 || p > Bytes.length t.data then raise Truncated;
    t.pos <- p

  let eof t = t.pos >= Bytes.length t.data

  let u8 t =
    if t.pos >= Bytes.length t.data then raise Truncated;
    let v = Char.code (Bytes.get t.data t.pos) in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let a = u8 t in
    let b = u8 t in
    a lor (b lsl 8)

  let u32 t =
    let a = u16 t in
    let b = u16 t in
    a lor (b lsl 16)

  let u64 t =
    let a = u32 t in
    let b = u32 t in
    a lor (b lsl 32)

  let str t =
    let n = u16 t in
    if t.pos + n > Bytes.length t.data then raise Truncated;
    let s = Bytes.sub_string t.data t.pos n in
    t.pos <- t.pos + n;
    s

  let raw t n =
    if n < 0 || t.pos + n > Bytes.length t.data then raise Truncated;
    let s = Bytes.sub t.data t.pos n in
    t.pos <- t.pos + n;
    s

  let bytes t =
    let n = u32 t in
    raw t n
end
