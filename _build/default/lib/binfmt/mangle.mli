(** Toy name mangling.

    Dyninst's symbol table answers lookups by mangled, "pretty" and "typed"
    name (paper Section 6.2). This module gives the synthetic toolchain an
    equivalent scheme so those three derived keys are genuinely distinct:

    - mangled: [_M<len><name>A<types>] where each type is one of [i], [f],
      [p] (int, float, pointer), e.g. [_M3fooAip] for [foo(int, ptr)];
    - pretty:  the bare function name, e.g. [foo];
    - typed:   the name with its signature, e.g. [foo(int, ptr)].

    Names that do not start with [_M] are treated as unmangled C symbols:
    pretty and typed are the name itself. *)

type arg_type = Int | Float | Ptr

val mangle : string -> arg_type list -> string
val pretty : string -> string
val typed : string -> string

val demangle : string -> (string * arg_type list) option
(** Inverse of [mangle]; [None] for unmangled names. *)
