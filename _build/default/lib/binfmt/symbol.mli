(** Symbols of the SBF container. *)

type kind = Func | Object

type t = {
  mangled : string;
  offset : int;  (** virtual address *)
  size : int;
  kind : kind;
  global : bool;
}

val make : ?size:int -> ?kind:kind -> ?global:bool -> string -> int -> t
val pretty : t -> string
val typed : t -> string
val is_func : t -> bool
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val write : Bio.W.t -> t -> unit
val read : Bio.R.t -> t
