lib/binfmt/image.ml: Bio Bytes Filename Fun List Option Pbca_isa Section Symbol Symtab
