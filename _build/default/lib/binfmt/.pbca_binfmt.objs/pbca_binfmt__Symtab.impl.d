lib/binfmt/symtab.ml: Bio Hashtbl Int List Option Pbca_concurrent String Symbol
