lib/binfmt/symtab.mli: Bio Symbol
