lib/binfmt/image.mli: Bytes Pbca_isa Section Symbol Symtab
