lib/binfmt/bio.ml: Buffer Bytes Char String
