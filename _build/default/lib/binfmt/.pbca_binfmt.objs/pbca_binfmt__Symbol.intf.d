lib/binfmt/symbol.mli: Bio Format
