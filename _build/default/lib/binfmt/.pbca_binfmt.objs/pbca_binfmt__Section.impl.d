lib/binfmt/section.ml: Bytes Char Format
