lib/binfmt/symbol.ml: Bio Format Hashtbl Mangle
