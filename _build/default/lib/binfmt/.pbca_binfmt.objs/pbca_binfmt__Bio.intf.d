lib/binfmt/bio.mli: Bytes
