lib/binfmt/mangle.ml: Buffer Char List String
