lib/binfmt/mangle.mli:
