lib/binfmt/section.mli: Bytes Format
