type kind = Func | Object

type t = {
  mangled : string;
  offset : int;
  size : int;
  kind : kind;
  global : bool;
}

let make ?(size = 0) ?(kind = Func) ?(global = true) mangled offset =
  { mangled; offset; size; kind; global }

let pretty t = Mangle.pretty t.mangled
let typed t = Mangle.typed t.mangled
let is_func t = t.kind = Func
let equal a b = a.mangled = b.mangled && a.offset = b.offset && a.kind = b.kind
let hash t = Hashtbl.hash (t.mangled, t.offset)

let pp fmt t =
  Format.fprintf fmt "%s@0x%x (%s, %d bytes)" t.mangled t.offset
    (match t.kind with Func -> "func" | Object -> "object")
    t.size

let write w t =
  Bio.W.str w t.mangled;
  Bio.W.u64 w t.offset;
  Bio.W.u32 w t.size;
  Bio.W.u8 w (match t.kind with Func -> 0 | Object -> 1);
  Bio.W.u8 w (if t.global then 1 else 0)

let read r =
  let mangled = Bio.R.str r in
  let offset = Bio.R.u64 r in
  let size = Bio.R.u32 r in
  let kind = if Bio.R.u8 r = 0 then Func else Object in
  let global = Bio.R.u8 r = 1 in
  { mangled; offset; size; kind; global }
