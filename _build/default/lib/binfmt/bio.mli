(** Little-endian byte-stream readers and writers used by every serialized
    structure in the toolkit (the SBF container, symbol tables, debug-info
    sections, ground-truth records). *)

module W : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int -> unit
  val str : t -> string -> unit
  (** Length-prefixed (u16) string. *)

  val bytes : t -> Bytes.t -> unit
  (** Length-prefixed (u32) byte blob. *)

  val raw : t -> Bytes.t -> unit
  (** Unprefixed bytes. *)

  val contents : t -> Bytes.t
  val length : t -> int
end

module R : sig
  type t

  exception Truncated

  val of_bytes : Bytes.t -> t
  val pos : t -> int
  val seek : t -> int -> unit
  val eof : t -> bool
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val u64 : t -> int
  val str : t -> string
  val bytes : t -> Bytes.t
  val raw : t -> int -> Bytes.t
end
