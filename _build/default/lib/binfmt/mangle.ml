type arg_type = Int | Float | Ptr

let type_char = function Int -> 'i' | Float -> 'f' | Ptr -> 'p'

let type_of_char = function
  | 'i' -> Some Int
  | 'f' -> Some Float
  | 'p' -> Some Ptr
  | _ -> None

let type_name = function Int -> "int" | Float -> "float" | Ptr -> "ptr"

let mangle name args =
  let b = Buffer.create (String.length name + 8) in
  Buffer.add_string b "_M";
  Buffer.add_string b (string_of_int (String.length name));
  Buffer.add_string b name;
  Buffer.add_char b 'A';
  List.iter (fun a -> Buffer.add_char b (type_char a)) args;
  Buffer.contents b

let demangle s =
  let n = String.length s in
  if n < 4 || s.[0] <> '_' || s.[1] <> 'M' then None
  else begin
    (* read the decimal length *)
    let rec read_len i acc =
      if i < n && s.[i] >= '0' && s.[i] <= '9' then
        read_len (i + 1) ((acc * 10) + (Char.code s.[i] - Char.code '0'))
      else (i, acc)
    in
    let i, len = read_len 2 0 in
    if len = 0 || i + len > n then None
    else
      let name = String.sub s i len in
      let j = i + len in
      if j >= n || s.[j] <> 'A' then None
      else
        let rec read_args k acc =
          if k >= n then Some (List.rev acc)
          else
            match type_of_char s.[k] with
            | Some t -> read_args (k + 1) (t :: acc)
            | None -> None
        in
        match read_args (j + 1) [] with
        | Some args -> Some (name, args)
        | None -> None
  end

let pretty s = match demangle s with Some (name, _) -> name | None -> s

let typed s =
  match demangle s with
  | Some (name, args) ->
    name ^ "(" ^ String.concat ", " (List.map type_name args) ^ ")"
  | None -> s
