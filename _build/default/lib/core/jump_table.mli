(** Jump-table analysis (the O_IEC operation).

    Backward slicing from an indirect jump, as in Dyninst (paper Section
    2.1): chase the jump register's definition to the scaled table-load
    idiom, the table base to a pc-relative address computation, and the
    bound to a dominating compare in a predecessor block. The table's words
    are then read from [.rodata].

    Two behaviours from the paper are reproduced:
    - union strategy (Section 5.3): when one definition path resists
      analysis, targets found along the other paths are still used. Failed
      bounds fall back to scanning entries while they look like code
      addresses, which can over-approximate — cleaned up during
      finalization via the "compilers do not emit overlapping jump tables"
      observation (Section 5.4).
    - the analysis is a pure function of the image and the *static* symbol
      set, never of the evolving parallel state, so its result for a given
      block is deterministic under any schedule. Re-running it when new
      paths appear (the paper's fixed point) can only add targets
      (monotonic ordering property, Section 4.1).

    The analysis cost is charged to the caller's trace task. *)

type outcome = {
  targets : int list;  (** entry addresses in table order (may repeat) *)
  base : int option;
  bounded : bool;
  entries : int;  (** number of table words read *)
}

val analyze : Cfg.t -> Cfg.block -> Pbca_isa.Reg.t -> outcome
(** [analyze g block r] resolves the table feeding [Jmp_ind r] at the end
    of [block]. *)

val empty_outcome : outcome
