(** Parser configuration knobs.

    The defaults reproduce the paper's final design; the switches exist for
    the ablation benchmarks (which design decision buys what). *)

type t = {
  eager_noreturn : bool;
      (** notify callers the moment a return instruction is found in the
          callee, instead of waiting for the callee's analysis to finish
          (paper Section 5.3) *)
  decode_cache : bool;
      (** per-thread cache of block starts to cut redundant decoding
          (paper Section 6.3) *)
  jt_union : bool;
      (** take the union of jump-table targets over analyzable paths instead
          of failing the whole table when one path resists analysis
          (paper Section 5.3) *)
  jt_max_scan : int;
      (** over-approximation cap when no bound is recoverable *)
  shards : int;  (** shard count for the concurrent maps *)
}

val default : t
