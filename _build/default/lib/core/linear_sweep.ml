module Image = Pbca_binfmt.Image
module Semantics = Pbca_isa.Semantics

type block = { s : int; e : int; term : Pbca_isa.Insn.t option }
type t = { blocks : block list; insns : int; undecodable : int }

(* Sweep [lo, cap): blocks plus every decode position, so chunks can be
   spliced where their instruction streams resynchronize. *)
type range_sweep = {
  rs_blocks : block list; (* reverse order *)
  rs_positions : (int, unit) Hashtbl.t;
  rs_insns : int;
  rs_skipped : int;
  rs_end : int;  (* actual end of the stream: the final instruction may
                    overshoot the cap *)
}

let sweep_range image lo cap =
  let blocks = ref [] in
  let positions = Hashtbl.create 256 in
  let insns = ref 0 in
  let skipped = ref 0 in
  let fin = ref lo in
  let rec go block_start a =
    fin := max !fin a;
    if a >= cap then begin
      if a > block_start then
        blocks := { s = block_start; e = a; term = None } :: !blocks
    end
    else
      match Image.decode_at image a with
      | Some (insn, len) ->
        Hashtbl.replace positions a ();
        incr insns;
        if Semantics.is_control_flow insn then begin
          blocks := { s = block_start; e = a + len; term = Some insn } :: !blocks;
          go (a + len) (a + len)
        end
        else go block_start (a + len)
      | None ->
        if a > block_start then
          blocks := { s = block_start; e = a; term = None } :: !blocks;
        incr skipped;
        go (a + 1) (a + 1)
  in
  go lo lo;
  {
    rs_blocks = !blocks;
    rs_positions = positions;
    rs_insns = !insns;
    rs_skipped = !skipped;
    rs_end = !fin;
  }

let finish blocks insns undecodable =
  { blocks = List.sort compare blocks; insns; undecodable }

let serial_sweep image lo hi =
  let rs = sweep_range image lo hi in
  finish rs.rs_blocks rs.rs_insns rs.rs_skipped

(* Parallel sweep: chunks are swept independently (each may start mid-
   instruction), then spliced serially. The splice point into chunk i+1 is
   wherever chunk i's stream ends; if chunk i+1's stream never passes
   through that address — the streams failed to resynchronize — the seam
   region is re-swept serially. Variable-length encodings self-synchronize
   quickly in practice, so re-sweeps are rare. *)
let parallel_sweep pool image lo hi =
  let chunks = max 1 (Pbca_concurrent.Task_pool.threads pool * 4) in
  let step = max 256 ((hi - lo + chunks - 1) / chunks) in
  let bounds =
    List.init chunks (fun i -> lo + (i * step))
    |> List.filter (fun a -> a < hi)
  in
  let bounds = Array.of_list bounds in
  let n = Array.length bounds in
  let sweeps = Array.make n None in
  Pbca_concurrent.Task_pool.parallel_for pool 0 n (fun i ->
      let cap = if i = n - 1 then hi else bounds.(i + 1) in
      sweeps.(i) <- Some (sweep_range image bounds.(i) cap));
  (* splice *)
  let blocks = ref [] in
  let insns = ref 0 in
  let skipped = ref 0 in
  (* take chunk [i]'s results from position [from]; returns the stream's
     end position (start of the next chunk's splice) *)
  let take i from =
    let rs = Option.get sweeps.(i) in
    let cap = if i = n - 1 then hi else bounds.(i + 1) in
    if from = bounds.(i) then begin
      (* aligned: accept wholesale *)
      List.iter (fun b -> blocks := b :: !blocks) rs.rs_blocks;
      insns := !insns + rs.rs_insns;
      skipped := !skipped + rs.rs_skipped;
      rs.rs_end
    end
    else if from >= cap then from (* the previous chunk overran this one *)
    else begin
      (* desynchronized start (the previous chunk's last instruction ran
         past the boundary): re-sweep the seam from the true position.
         When [from] appears in this chunk's decode positions the streams
         have resynchronized and the re-sweep just rebuilds exact block
         boundaries; otherwise it is the serial fallback. *)
      let seam = sweep_range image from cap in
      List.iter (fun b -> blocks := b :: !blocks) seam.rs_blocks;
      insns := !insns + seam.rs_insns;
      skipped := !skipped + seam.rs_skipped;
      seam.rs_end
    end
  in
  let pos = ref lo in
  for i = 0 to n - 1 do
    pos := take i !pos
  done;
  (* chunk sweeps end exactly at their cap (blocks are cut there), so the
     splice produces contiguous coverage; adjacent cut blocks merge in the
     final normalization below *)
  let sorted = List.sort compare !blocks in
  let rec merge = function
    | a :: b :: rest when a.e = b.s && a.term = None ->
      merge ({ s = a.s; e = b.e; term = b.term } :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  finish (merge sorted) !insns !skipped

let sweep ?pool image =
  let text = Image.text image in
  let lo = text.Pbca_binfmt.Section.addr in
  let hi = lo + Pbca_binfmt.Section.size text in
  match pool with
  | None -> serial_sweep image lo hi
  | Some pool -> parallel_sweep pool image lo hi

let coverage t = List.fold_left (fun acc b -> acc + (b.e - b.s)) 0 t.blocks

let compare_with_traversal t (g : Cfg.t) =
  let mark tbl lo hi =
    for a = lo to hi - 1 do
      Hashtbl.replace tbl a ()
    done
  in
  let sweep_bytes = Hashtbl.create 4096 in
  List.iter (fun b -> mark sweep_bytes b.s b.e) t.blocks;
  let trav_bytes = Hashtbl.create 4096 in
  List.iter
    (fun (b : Cfg.block) -> mark trav_bytes b.Cfg.b_start (Cfg.block_end b))
    (Cfg.blocks_list g);
  let both = ref 0 and sweep_only = ref 0 and trav_only = ref 0 in
  Hashtbl.iter
    (fun a () ->
      if Hashtbl.mem trav_bytes a then incr both else incr sweep_only)
    sweep_bytes;
  Hashtbl.iter
    (fun a () -> if not (Hashtbl.mem sweep_bytes a) then incr trav_only)
    trav_bytes;
  (!both, !sweep_only, !trav_only)
