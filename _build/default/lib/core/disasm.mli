(** Pure disassembly helpers over an image. All functions are stateless and
    safe to call from any number of threads. *)

val insns_between :
  Pbca_binfmt.Image.t -> lo:int -> hi:int -> (int * Pbca_isa.Insn.t * int) list
(** Linear decode of [lo, hi): [(addr, insn, len)] triples. Stops early at
    an undecodable byte. *)

val block_insns : Cfg.t -> Cfg.block -> (int * Pbca_isa.Insn.t * int) list
(** Instructions of a resolved block. Empty for candidates. *)

val terminator : Cfg.t -> Cfg.block -> (int * Pbca_isa.Insn.t * int) option
(** Last instruction of a resolved block, if it is a control-flow
    instruction. *)

val ends_with_teardown_jump : Cfg.t -> Cfg.block -> bool
(** True when the block's final instructions are [Leave] followed by an
    unconditional jump — the stack-tear-down tail-call signal (paper
    Section 2.1, heuristic 3). *)
