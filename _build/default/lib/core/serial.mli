(** Serial CFG construction baseline.

    Runs the same deterministic algorithm on a single-worker pool: the task
    queue degenerates to a plain worklist drained by the calling domain, so
    this is the classic serial control-flow traversal (Schwarz et al.;
    paper Section 2) with this implementation's semantics. Because the
    final CFG is a least fixed point independent of task order, the serial
    and parallel results are identical — which the test suite checks on
    every corpus. *)

val parse :
  ?config:Config.t ->
  ?trace:Pbca_simsched.Trace.t ->
  Pbca_binfmt.Image.t ->
  Cfg.t

val parse_and_finalize :
  ?config:Config.t ->
  ?trace:Pbca_simsched.Trace.t ->
  Pbca_binfmt.Image.t ->
  Cfg.t
