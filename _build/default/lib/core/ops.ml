module Image = Pbca_binfmt.Image
module Semantics = Pbca_isa.Semantics

type block = { s : int; e : int }
type ekind = Jump | Cond_taken | Cond_fall | Call | Fallthrough | Indirect
type edge = { src : int; dst : int; kind : ekind }

type g = {
  blocks : block list;
  cands : int list;
  edges : edge list;
  fents : int list;
}

let norm g =
  {
    blocks = List.sort_uniq compare g.blocks;
    cands = List.sort_uniq compare g.cands;
    edges = List.sort_uniq compare g.edges;
    fents = List.sort_uniq compare g.fents;
  }

let empty = { blocks = []; cands = []; edges = []; fents = [] }
let init entries = norm { empty with cands = entries; fents = entries }
let equal a b = norm a = norm b

let pp fmt g =
  let g = norm g in
  Format.fprintf fmt "@[<v>blocks:";
  List.iter (fun b -> Format.fprintf fmt " [0x%x,0x%x)" b.s b.e) g.blocks;
  Format.fprintf fmt "@ cands:";
  List.iter (Format.fprintf fmt " 0x%x") g.cands;
  Format.fprintf fmt "@ edges:";
  List.iter (fun e -> Format.fprintf fmt " 0x%x->0x%x" e.src e.dst) g.edges;
  Format.fprintf fmt "@]"

let find_block_covering g a =
  List.find_opt (fun b -> a >= b.s && a < b.e) g.blocks

let is_block_start g a = List.exists (fun b -> b.s = a) g.blocks
let block_at g a = List.find_opt (fun b -> b.s = a) g.blocks

(* Linear scan from [t]: the address just past the first control-flow
   instruction, or the first undecodable address. *)
let scan_end image t =
  let rec go a =
    match Image.decode_at image a with
    | None -> a
    | Some (insn, len) ->
      if Semantics.is_control_flow insn then a + len else go (a + len)
  in
  go t

(* Does [t, s) contain a control-flow instruction (decoding from t)? Also
   true when decoding runs past [s] without landing on it. *)
let cf_free_until image t s =
  let rec go a =
    if a = s then true
    else if a > s then false
    else
      match Image.decode_at image a with
      | None -> false
      | Some (insn, len) ->
        if Semantics.is_control_flow insn then false else go (a + len)
  in
  go t

let o_ber image g t =
  if not (List.mem t g.cands) then g
  else
    let cands = List.filter (fun c -> c <> t) g.cands in
    match find_block_covering g t with
    | Some b when b.s < t ->
      (* block splitting: incoming edges stay on [s,t); outgoing move *)
      let blocks =
        { s = b.s; e = t } :: { s = t; e = b.e }
        :: List.filter (fun x -> x <> b) g.blocks
      in
      let edges =
        List.map (fun e -> if e.src = b.s then { e with src = t } else e) g.edges
      in
      let edges = { src = b.s; dst = t; kind = Fallthrough } :: edges in
      norm { g with blocks; cands; edges }
    | Some _ ->
      (* a block already starts at t: resolving the candidate is absorbed *)
      norm { g with cands }
    | None -> (
      (* early block ending: the nearest block start above t, if reachable
         without control flow *)
      let above =
        List.filter (fun b -> b.s > t) g.blocks
        |> List.sort (fun a b -> compare a.s b.s)
      in
      match above with
      | b :: _ when cf_free_until image t b.s ->
        norm
          {
            g with
            blocks = { s = t; e = b.s } :: g.blocks;
            cands;
            edges = { src = t; dst = b.s; kind = Fallthrough } :: g.edges;
          }
      | _ ->
        let e = scan_end image t in
        norm { g with blocks = { s = t; e } :: g.blocks; cands })

let add_target g acc t =
  if is_block_start g t || List.mem t g.cands || List.mem t acc then acc
  else t :: acc

let o_dec image g s =
  match block_at g s with
  | None -> g
  | Some b ->
    if List.exists (fun e -> e.src = s && e.kind <> Fallthrough) g.edges then g
    else begin
      (* find the terminating instruction *)
      let rec last a =
        match Image.decode_at image a with
        | Some (insn, len) when a + len >= b.e -> Some (a, insn, len)
        | Some (_, len) -> last (a + len)
        | None -> None
      in
      match last b.s with
      | None -> g
      | Some (a, insn, len) -> (
        match Semantics.flow ~addr:a ~len insn with
        | Semantics.Jump t ->
          let cands = add_target g g.cands t in
          norm
            { g with cands; edges = { src = s; dst = t; kind = Jump } :: g.edges }
        | Semantics.Cond_jump t ->
          let cands = add_target g g.cands t in
          let cands = add_target g cands (a + len) in
          norm
            {
              g with
              cands;
              edges =
                { src = s; dst = t; kind = Cond_taken }
                :: { src = s; dst = a + len; kind = Cond_fall }
                :: g.edges;
            }
        | Semantics.Call_direct t ->
          let cands = add_target g g.cands t in
          norm
            { g with cands; edges = { src = s; dst = t; kind = Call } :: g.edges }
        | Semantics.Jump_indirect | Semantics.Call_indirect
        | Semantics.Return | Semantics.Stop | Semantics.Fallthrough ->
          g)
    end

let o_iec g s targets =
  match block_at g s with
  | None -> g
  | Some _ ->
    List.fold_left
      (fun g t ->
        if List.exists (fun e -> e.src = s && e.dst = t && e.kind = Indirect) g.edges
        then g
        else
          let cands = add_target g g.cands t in
          norm
            {
              g with
              cands;
              edges = { src = s; dst = t; kind = Indirect } :: g.edges;
            })
      g targets

let o_er g victim =
  let edges = List.filter (fun e -> e <> victim) g.edges in
  (* reachability from function entries over remaining edges *)
  let reachable = Hashtbl.create 16 in
  let rec visit a =
    if not (Hashtbl.mem reachable a) then begin
      Hashtbl.replace reachable a ();
      List.iter (fun e -> if e.src = a then visit e.dst) edges
    end
  in
  List.iter visit g.fents;
  let keep a = Hashtbl.mem reachable a in
  norm
    {
      blocks = List.filter (fun b -> keep b.s) g.blocks;
      cands = List.filter keep g.cands;
      edges = List.filter (fun e -> keep e.src && keep e.dst) edges;
      fents = g.fents;
    }

(* ------------------------------------------------------------------ *)
(* Partial order (Section 3).                                          *)

let addresses g =
  List.concat_map
    (fun b -> List.init (max 0 (b.e - b.s)) (fun i -> b.s + i))
    g.blocks

let block_end_of g a =
  match find_block_covering g a with Some b -> Some b.e | None -> None

let preceq g1 g2 =
  let a1 = addresses g1 and a2 = addresses g2 in
  let covered = Hashtbl.create 64 in
  List.iter (fun a -> Hashtbl.replace covered a ()) a2;
  let addr_ok = List.for_all (Hashtbl.mem covered) a1 in
  (* explicit control flow: an edge (a -> b) survives as an edge whose
     source block ends at end(a) and whose target starts at b *)
  let edge_ok (e : edge) =
    if e.kind = Fallthrough then true
    else
      match block_end_of g1 e.src with
      | None -> true (* source was a candidate-side artifact *)
      | Some ea ->
        List.exists
          (fun (e2 : edge) ->
            e2.dst = e.dst
            && e2.kind = e.kind
            &&
            match block_end_of g2 e2.src with
            | Some ea2 -> ea2 = ea || block_end_of g2 (ea - 1) = Some ea
            | None -> false)
          g2.edges
  in
  let edges_ok = List.for_all edge_ok g1.edges in
  (* implicit flow: each block of g1 is a fall-through chain in g2 *)
  let chain_ok (b : block) =
    let rec walk s =
      match block_at g2 s with
      | None -> false
      | Some b2 ->
        if b2.e = b.e then true
        else if b2.e > b.e then false
        else
          List.exists
            (fun e -> e.src = s && e.dst = b2.e && e.kind = Fallthrough)
            g2.edges
          && walk b2.e
    in
    walk b.s
  in
  let chains_ok = List.for_all chain_ok g1.blocks in
  let fents_ok =
    List.for_all
      (fun f -> is_block_start g2 f || List.mem f g2.cands)
      g1.fents
  in
  addr_ok && edges_ok && chains_ok && fents_ok

(* ------------------------------------------------------------------ *)

(* Does the block end with a direct-control-flow terminator whose edges
   O_DEC would create? *)
let has_direct_terminator image (b : block) =
  let rec last a =
    match Image.decode_at image a with
    | Some (insn, len) when a + len >= b.e -> Some (insn, a, len)
    | Some (_, len) -> last (a + len)
    | None -> None
  in
  match last b.s with
  | Some (insn, a, len) -> (
    match Semantics.flow ~addr:a ~len insn with
    | Semantics.Jump _ | Semantics.Cond_jump _ | Semantics.Call_direct _ ->
      true
    | Semantics.Jump_indirect | Semantics.Call_indirect | Semantics.Return
    | Semantics.Stop | Semantics.Fallthrough ->
      false)
  | None -> false

let construct image g0 =
  let rec go g =
    match g.cands with
    | t :: _ -> go (o_ber image g t)
    | [] -> (
      (* apply O_DEC to any block whose terminator edges are missing *)
      let pending =
        List.find_opt
          (fun b ->
            (not
               (List.exists
                  (fun e -> e.src = b.s && e.kind <> Fallthrough)
                  g.edges))
            && has_direct_terminator image b)
          g.blocks
      in
      match pending with Some b -> go (o_dec image g b.s) | None -> g)
  in
  go g0
