lib/core/finalize.ml: Addr_map Array Atomic Cfg Disasm Hashtbl List Option Pbca_binfmt Pbca_concurrent Pbca_isa Pbca_simsched
