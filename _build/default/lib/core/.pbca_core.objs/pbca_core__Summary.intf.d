lib/core/summary.mli: Cfg Format
