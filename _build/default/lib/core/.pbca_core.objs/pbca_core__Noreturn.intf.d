lib/core/noreturn.mli: Cfg Pbca_simsched
