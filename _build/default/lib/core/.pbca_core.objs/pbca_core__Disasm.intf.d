lib/core/disasm.mli: Cfg Pbca_binfmt Pbca_isa
