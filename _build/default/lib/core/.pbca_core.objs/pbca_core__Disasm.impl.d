lib/core/disasm.ml: Cfg List Pbca_binfmt Pbca_isa
