lib/core/ops.mli: Format Pbca_binfmt
