lib/core/cfg_diff.mli: Cfg Format
