lib/core/dot.mli: Cfg
