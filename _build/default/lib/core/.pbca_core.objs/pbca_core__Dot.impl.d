lib/core/dot.ml: Addr_map Buffer Cfg Disasm Fun Hashtbl List Pbca_isa Printf String
