lib/core/jump_table.ml: Addr_map Atomic Cfg Config Disasm List Option Pbca_binfmt Pbca_isa Pbca_simsched
