lib/core/linear_sweep.ml: Array Cfg Hashtbl List Option Pbca_binfmt Pbca_concurrent Pbca_isa
