lib/core/addr_map.ml: Int Pbca_concurrent
