lib/core/serial.mli: Cfg Config Pbca_binfmt Pbca_simsched
