lib/core/cfg.mli: Addr_map Atomic Config Format Hashtbl Mutex Pbca_binfmt Pbca_concurrent Pbca_isa Pbca_simsched
