lib/core/jump_table.mli: Cfg Pbca_isa
