lib/core/serial.ml: Parallel Pbca_concurrent
