lib/core/config.ml:
