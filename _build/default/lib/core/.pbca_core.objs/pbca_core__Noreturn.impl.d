lib/core/noreturn.ml: Addr_map Atomic Cfg Config List Pbca_simsched String
