lib/core/cfg.ml: Addr_map Atomic Config Format Hashtbl List Mutex Pbca_binfmt Pbca_concurrent Pbca_isa Pbca_simsched
