lib/core/linear_sweep.mli: Cfg Pbca_binfmt Pbca_concurrent Pbca_isa
