lib/core/parallel.mli: Cfg Config Pbca_binfmt Pbca_concurrent Pbca_simsched
