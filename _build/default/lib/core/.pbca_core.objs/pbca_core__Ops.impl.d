lib/core/ops.ml: Format Hashtbl List Pbca_binfmt Pbca_isa
