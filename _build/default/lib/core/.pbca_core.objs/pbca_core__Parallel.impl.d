lib/core/parallel.ml: Addr_map Array Atomic Cfg Config Disasm Finalize Hashtbl Jump_table List Mutex Noreturn Option Pbca_binfmt Pbca_concurrent Pbca_isa Pbca_simsched Printf
