lib/core/cfg_diff.ml: Atomic Cfg Disasm Format Hashtbl List Option Pbca_isa Printf
