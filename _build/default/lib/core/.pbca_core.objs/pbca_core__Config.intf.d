lib/core/config.mli:
