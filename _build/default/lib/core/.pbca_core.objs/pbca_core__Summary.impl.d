lib/core/summary.ml: Addr_map Atomic Cfg Digest Format List Marshal Printf Set String
