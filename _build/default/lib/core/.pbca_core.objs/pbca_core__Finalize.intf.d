lib/core/finalize.mli: Cfg Pbca_concurrent
