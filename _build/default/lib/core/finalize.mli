(** CFG finalization — the correction phase (paper Section 5.4).

    Four parallel steps, each deterministic given the expansion-phase graph:

    1. Jump-table cleanup: tables are sorted by base address; using the
       observation that compilers do not emit overlapping jump tables, a
       table's entries are clamped at the next table's base (or the end of
       its section), and indirect edges pointing outside the clamped entry
       set are removed (O_ER).
    2. Unreachable-code removal: blocks no longer reachable from any
       function entry are dropped along with their edges.
    3. Tail-call correction and function boundaries: function bodies are
       recomputed by traversing intra-procedural edges from each entry,
       then the three correction rules run; each edge's classification
       flips at most once, guaranteeing convergence.
    4. Function pruning: functions discovered during traversal that ended
       up with no incoming inter-procedural edges (and are not in the
       symbol table) are removed.

    Afterwards, [f_blocks] holds each function's body, every dead edge and
    block is gone from the maps, and the CFG is read-only for clients
    (paper Section 7.2). *)

val run : pool:Pbca_concurrent.Task_pool.t -> Cfg.t -> unit
