(* Concurrent map keyed by virtual address. *)
include Pbca_concurrent.Conc_hash.Make (struct
  type t = int

  let equal = Int.equal

  (* Addresses are 16-byte-aligned-ish; fold the high bits in so shard
     selection stays uniform. *)
  let hash a = (a * 0x9E3779B1) lxor (a lsr 16)
end)
