(** Parallel CFG construction (paper Section 5).

    The expansion phase of the analysis: starting from the symbol table's
    function entries (plus the program entry point), blocks are discovered,
    linearly parsed and registered under the five invariants of
    Section 5.2, functions traverse the evolving graph to learn their
    return status, call-fall-through edges are released eagerly as return
    instructions are found, and jump tables are resolved to a fixed point
    in quiescent rounds (each round's input graph is deterministic, so the
    final CFG is identical under any schedule — including the serial
    one). The correction phase is {!Finalize.run}.

    Work is scheduled on a work-stealing task pool; one task parses one
    block, walks one function fragment, or analyzes one jump table. When a
    trace is supplied, every task records its cost and dependencies for
    {!Pbca_simsched.Replay}. *)

val parse :
  ?config:Config.t ->
  ?trace:Pbca_simsched.Trace.t ->
  pool:Pbca_concurrent.Task_pool.t ->
  Pbca_binfmt.Image.t ->
  Cfg.t
(** Expansion phase only; call {!Finalize.run} afterwards for the full
    pipeline (or use {!parse_and_finalize}). *)

val parse_and_finalize :
  ?config:Config.t ->
  ?trace:Pbca_simsched.Trace.t ->
  pool:Pbca_concurrent.Task_pool.t ->
  Pbca_binfmt.Image.t ->
  Cfg.t
