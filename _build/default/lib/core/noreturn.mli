(** Non-returning function analysis (paper Sections 2.1 and 5.3).

    Every function carries a return status: [Unset] until proven otherwise,
    [Returns] once any of its return points is discovered, [Noreturn] when
    seeded by name matching (exit/abort-style) or left [Unset] at the global
    fixed point (which resolves cyclic dependencies to non-returning, as in
    Meng and Miller's serial analysis).

    The parallel refinement is *eager notification*: the moment a thread
    traversing a function decodes one of its return instructions, the
    function's status flips to [Returns] and every waiting call site is
    released — there is no need to wait for the callee's analysis to finish
    (Section 5.3). Call sites waiting on an [Unset] callee park a waiter on
    the callee; tail-calling callers park a status waiter, since a function
    tail-calling a returning function returns too.

    All transitions are CAS-driven and idempotent; the call-fall-through
    edge of a given call site is created at most once (the graph's
    [ft_guard]). *)

val is_known_noreturn : string -> bool
(** Name matching against known non-returning functions ([exit], [abort*],
    [_exit], [panic*], [__stack_chk_fail]). Deliberately does not know
    [error] — reproducing paper difference 1. *)

val seed_status : Cfg.t -> Cfg.func -> unit
(** Initialize a fresh function's status from its name. *)

val set_returns :
  Cfg.t ->
  Cfg.func ->
  fire:(dep:Pbca_simsched.Trace.dep option -> call_end:int -> unit) ->
  unit
(** Flip to [Returns] (no-op unless currently [Unset]) and drain waiters:
    call-fall-through waiters via [fire], tail-call status waiters
    recursively. With [eager_noreturn = false] (ablation), draining is
    deferred to {!drain_pending}. *)

val request_fallthrough :
  Cfg.t ->
  callee:Cfg.func ->
  call_end:int ->
  fire:(dep:Pbca_simsched.Trace.dep option -> call_end:int -> unit) ->
  unit
(** Handle a call site: create the fall-through now if the callee returns,
    park a waiter if it is [Unset], do nothing if it is [Noreturn]. *)

val subscribe_tail_status :
  Cfg.t ->
  caller:Cfg.func ->
  callee:Cfg.func ->
  fire:(dep:Pbca_simsched.Trace.dep option -> call_end:int -> unit) ->
  unit
(** A tail call from [caller] to [callee]: [caller] returns if [callee]
    does. *)

val drain_pending :
  Cfg.t ->
  fire:(dep:Pbca_simsched.Trace.dep option -> call_end:int -> unit) ->
  bool
(** Drain waiters of all [Returns] functions (used between rounds when
    eager notification is disabled). Returns true if anything fired. *)

val resolve_unset : Cfg.t -> unit
(** Global quiescence: every function still [Unset] is non-returning
    (cyclic-dependency rule); pending waiters are discarded. *)
