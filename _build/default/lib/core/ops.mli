(** The CFG operation algebra (paper Sections 3 and 4).

    A pure, immutable model of CFG construction: a graph is a set of
    resolved blocks, candidate blocks, edges and function entries, and
    construction is the repeated application of the core operations
    O_BER (block end resolution), O_DEC (direct edge creation),
    O_IEC (indirect edge creation) and O_ER (edge removal) against a fixed
    binary image.

    This module exists to state — and let the property-based tests verify —
    the paper's operation properties on real generated binaries:

    - O_BER and O_DEC commute with themselves and each other (Section 4.1),
      which is the foundation of the parallel algorithm;
    - O_ER commutes with itself;
    - delaying O_IEC can only grow the final graph (monotonic ordering, via
      the partial order {!preceq}).

    The production parser ({!Parallel}) uses optimized concurrent
    structures; this model is its executable specification. *)

type block = { s : int; e : int }
(** Resolved basic block [s, e). *)

type ekind = Jump | Cond_taken | Cond_fall | Call | Fallthrough | Indirect

type edge = { src : int; dst : int; kind : ekind }
(** [src] is the source block's start address; [dst] a start address of a
    block or candidate. *)

type g = {
  blocks : block list;  (** sorted by start, disjoint *)
  cands : int list;  (** sorted candidate starts *)
  edges : edge list;  (** sorted *)
  fents : int list;  (** function entry start addresses *)
}

val empty : g
val init : int list -> g
(** [init entries] is G0: every entry is a candidate block and a function
    entry (paper Section 3). *)

val equal : g -> g -> bool
val pp : Format.formatter -> g -> unit

val find_block_covering : g -> int -> block option
val is_block_start : g -> int -> bool

val o_ber : Pbca_binfmt.Image.t -> g -> int -> g
(** Block end resolution of candidate [t]: block splitting, early block
    ending, or linear parsing (paper Section 3). No-op if [t] is not a
    candidate. *)

val o_dec : Pbca_binfmt.Image.t -> g -> int -> g
(** Direct edge creation from the block starting at the given address,
    based on its terminating instruction. Targets not yet known become
    candidates. No-op on candidates or blocks without a direct-control-flow
    terminator. *)

val o_iec : g -> int -> int list -> g
(** [o_iec g s targets] adds indirect edges from block [s] to each target
    (which become candidates when new) — the target list stands for the
    result of a jump-table analysis. *)

val o_er : g -> edge -> g
(** Edge removal: delete the edge, then drop every block and candidate no
    longer reachable from any function entry, along with their edges
    (paper Section 3). *)

val preceq : g -> g -> bool
(** The partial order [g1 ≼ g2] of Section 3: address coverage, explicit
    control flow (modulo block splits), implicit fall-through chains, and
    function entries are all preserved in [g2]. *)

val construct : Pbca_binfmt.Image.t -> g -> g
(** Drive O_BER/O_DEC to a fixed point from the given graph — a reference
    (slow, serial) constructor for small images, used as a test oracle. *)
