(** Structural diff of two parsed binaries.

    The paper's motivating workflow recompiles and re-analyzes after every
    source change (Section 1), and notes that "even small code changes can
    lead to dramatically different binaries". This module quantifies that:
    functions are matched by name (entry addresses shift between builds)
    and compared by a layout-independent shape signature — block count,
    instruction mnemonics, and the multiset of edge kinds — so unchanged
    functions are recognized even after relocation. *)

type func_sig = {
  fsig_blocks : int;
  fsig_insns : string list;  (** mnemonics in address order *)
  fsig_edges : (Cfg.edge_kind * int) list;  (** kind histogram, sorted *)
  fsig_returns : bool;
}

val signature_of : Cfg.t -> Cfg.func -> func_sig

type change = {
  ch_name : string;
  ch_detail : string;
}

type t = {
  unchanged : int;
  added : string list;
  removed : string list;
  changed : change list;
}

val diff : Cfg.t -> Cfg.t -> t
(** [diff old_cfg new_cfg]. Functions without symbols are matched by their
    position among the unnamed. *)

val pp : Format.formatter -> t -> unit
