type t = {
  eager_noreturn : bool;
  decode_cache : bool;
  jt_union : bool;
  jt_max_scan : int;
  shards : int;
}

let default =
  {
    eager_noreturn = true;
    decode_cache = true;
    jt_union = true;
    jt_max_scan = 128;
    shards = 128;
  }
