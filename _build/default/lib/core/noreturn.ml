let known_prefixes = [ "abort"; "panic" ]
let known_exact = [ "exit"; "_exit"; "__stack_chk_fail" ]

let is_known_noreturn name =
  List.mem name known_exact
  || List.exists
       (fun p ->
         String.length name >= String.length p
         && String.sub name 0 (String.length p) = p)
       known_prefixes

let seed_status _g (f : Cfg.func) =
  if is_known_noreturn f.f_name then
    ignore (Atomic.compare_and_set f.f_ret Cfg.Unset Cfg.Noreturn)

let fire_once g (callee : Cfg.func) ~call_end ~fire =
  (* the ft_guard makes "create the call-fall-through for this call site"
     idempotent across the racing parties *)
  if Addr_map.insert_if_absent g.Cfg.ft_guard call_end () then
    fire ~dep:(Atomic.get callee.Cfg.f_ret_dep) ~call_end

let rec drain_waiters g (f : Cfg.func) ~fire =
  let ws = Atomic.exchange f.f_waiters [] in
  List.iter
    (fun w ->
      match w with
      | Cfg.W_fallthrough call_end -> fire_once g f ~call_end ~fire
      | Cfg.W_status caller -> set_returns g caller ~fire)
    ws

and set_returns g (f : Cfg.func) ~fire =
  if Atomic.compare_and_set f.f_ret Cfg.Unset Cfg.Returns then begin
    Atomic.set f.f_ret_dep (Pbca_simsched.Trace.capture g.Cfg.trace);
    if g.Cfg.config.Config.eager_noreturn then drain_waiters g f ~fire
  end

let rec push_waiter (f : Cfg.func) w =
  let cur = Atomic.get f.f_waiters in
  if not (Atomic.compare_and_set f.f_waiters cur (w :: cur)) then
    push_waiter f w

let request_fallthrough g ~(callee : Cfg.func) ~call_end ~fire =
  match Atomic.get callee.f_ret with
  | Cfg.Returns -> fire_once g callee ~call_end ~fire
  | Cfg.Noreturn -> ()
  | Cfg.Unset ->
    push_waiter callee (Cfg.W_fallthrough call_end);
    (* recheck: the callee may have transitioned while we registered *)
    if
      Atomic.get callee.f_ret = Cfg.Returns
      && g.Cfg.config.Config.eager_noreturn
    then fire_once g callee ~call_end ~fire

let subscribe_tail_status g ~(caller : Cfg.func) ~(callee : Cfg.func) ~fire =
  match Atomic.get callee.f_ret with
  | Cfg.Returns -> set_returns g caller ~fire
  | Cfg.Noreturn -> ()
  | Cfg.Unset ->
    push_waiter callee (Cfg.W_status caller);
    if
      Atomic.get callee.f_ret = Cfg.Returns
      && g.Cfg.config.Config.eager_noreturn
    then set_returns g caller ~fire

let drain_pending g ~fire =
  let fired = ref false in
  Addr_map.iter
    (fun _ f ->
      if Atomic.get f.Cfg.f_ret = Cfg.Returns && Atomic.get f.Cfg.f_waiters <> []
      then begin
        fired := true;
        drain_waiters g f ~fire
      end)
    g.Cfg.funcs;
  !fired

let resolve_unset g =
  Addr_map.iter
    (fun _ f ->
      ignore (Atomic.compare_and_set f.Cfg.f_ret Cfg.Unset Cfg.Noreturn);
      ignore (Atomic.exchange f.Cfg.f_waiters []))
    g.Cfg.funcs
