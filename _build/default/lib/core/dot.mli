(** Graphviz export of finalized CFGs — the visual counterpart of the
    paper's Figure 1 diagrams. *)

val func_to_dot : Cfg.t -> Cfg.func -> string
(** One function's CFG as a [digraph]: blocks become nodes labelled with
    their address range and disassembly, edges are styled by kind
    (fall-through dashed, calls bold, tail calls red, indirect blue). *)

val graph_to_dot : ?max_funcs:int -> Cfg.t -> string
(** The whole program as one digraph with one cluster per function
    (blocks shared between functions appear in the first owner's cluster).
    [max_funcs] caps the output (default 50). *)

val write_func : Cfg.t -> Cfg.func -> string -> unit
(** Write {!func_to_dot} to a file. *)
