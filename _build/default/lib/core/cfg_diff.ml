type func_sig = {
  fsig_blocks : int;
  fsig_insns : string list;
  fsig_edges : (Cfg.edge_kind * int) list;
  fsig_returns : bool;
}

type change = { ch_name : string; ch_detail : string }

type t = {
  unchanged : int;
  added : string list;
  removed : string list;
  changed : change list;
}

let signature_of g (f : Cfg.func) =
  let insns =
    List.concat_map
      (fun (b : Cfg.block) ->
        List.map
          (fun (_, insn, _) -> Pbca_isa.Insn.mnemonic insn)
          (Disasm.block_insns g b))
      f.Cfg.f_blocks
  in
  let kinds = Hashtbl.create 8 in
  List.iter
    (fun (b : Cfg.block) ->
      List.iter
        (fun (e : Cfg.edge) ->
          Hashtbl.replace kinds e.e_kind
            (1 + Option.value (Hashtbl.find_opt kinds e.e_kind) ~default:0))
        (Cfg.out_edges b))
    f.Cfg.f_blocks;
  {
    fsig_blocks = List.length f.Cfg.f_blocks;
    fsig_insns = insns;
    fsig_edges =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds [] |> List.sort compare;
    fsig_returns = Atomic.get f.Cfg.f_ret = Cfg.Returns;
  }

let describe_change old_sig new_sig =
  if old_sig.fsig_returns <> new_sig.fsig_returns then
    Printf.sprintf "return status flipped (%b -> %b)" old_sig.fsig_returns
      new_sig.fsig_returns
  else if old_sig.fsig_blocks <> new_sig.fsig_blocks then
    Printf.sprintf "blocks %d -> %d" old_sig.fsig_blocks new_sig.fsig_blocks
  else if List.length old_sig.fsig_insns <> List.length new_sig.fsig_insns then
    Printf.sprintf "instructions %d -> %d"
      (List.length old_sig.fsig_insns)
      (List.length new_sig.fsig_insns)
  else if old_sig.fsig_edges <> new_sig.fsig_edges then "edge kinds changed"
  else "instruction bodies changed"

let named_sigs g =
  List.map (fun (f : Cfg.func) -> (f.Cfg.f_name, signature_of g f))
    (Cfg.funcs_list g)

let diff old_g new_g =
  let olds = named_sigs old_g in
  let news = named_sigs new_g in
  let old_tbl = Hashtbl.create 64 and new_tbl = Hashtbl.create 64 in
  List.iter (fun (n, s) -> Hashtbl.replace old_tbl n s) olds;
  List.iter (fun (n, s) -> Hashtbl.replace new_tbl n s) news;
  let unchanged = ref 0 in
  let changed = ref [] in
  let removed = ref [] in
  List.iter
    (fun (n, os) ->
      match Hashtbl.find_opt new_tbl n with
      | Some ns ->
        if os = ns then incr unchanged
        else changed := { ch_name = n; ch_detail = describe_change os ns } :: !changed
      | None -> removed := n :: !removed)
    olds;
  let added =
    List.filter_map
      (fun (n, _) -> if Hashtbl.mem old_tbl n then None else Some n)
      news
  in
  {
    unchanged = !unchanged;
    added = List.sort compare added;
    removed = List.sort compare !removed;
    changed =
      List.sort (fun a b -> compare a.ch_name b.ch_name) !changed;
  }

let pp fmt t =
  Format.fprintf fmt "@[<v>%d unchanged, %d changed, %d added, %d removed"
    t.unchanged (List.length t.changed) (List.length t.added)
    (List.length t.removed);
  List.iter
    (fun c -> Format.fprintf fmt "@   ~ %s: %s" c.ch_name c.ch_detail)
    t.changed;
  List.iter (fun n -> Format.fprintf fmt "@   + %s" n) t.added;
  List.iter (fun n -> Format.fprintf fmt "@   - %s" n) t.removed;
  Format.fprintf fmt "@]"
