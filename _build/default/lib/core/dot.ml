let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | '\n' -> "\\l"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let block_label g (b : Cfg.block) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "[0x%x, 0x%x)\n" b.Cfg.b_start (Cfg.block_end b));
  List.iter
    (fun (a, insn, _) ->
      Buffer.add_string buf
        (Printf.sprintf "%x: %s\n" a (Pbca_isa.Insn.to_string insn)))
    (Disasm.block_insns g b);
  escape (Buffer.contents buf)

let edge_attrs (e : Cfg.edge) =
  match e.e_kind with
  | Cfg.Fallthrough -> "style=dashed"
  | Cfg.Cond_fall -> "style=dashed,label=\"F\""
  | Cfg.Cond_taken -> "label=\"T\""
  | Cfg.Jump -> ""
  | Cfg.Call -> "style=bold,color=darkgreen"
  | Cfg.Call_fallthrough -> "style=dotted,label=\"ret\""
  | Cfg.Indirect -> "color=blue"
  | Cfg.Tail_call -> "color=red,style=bold"

let node_name (b : Cfg.block) = Printf.sprintf "b0x%x" b.Cfg.b_start

let emit_block buf g (b : Cfg.block) =
  Buffer.add_string buf
    (Printf.sprintf "  %s [shape=box,fontname=monospace,label=\"%s\"];\n"
       (node_name b) (block_label g b))

let emit_edges buf (b : Cfg.block) =
  List.iter
    (fun (e : Cfg.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [%s];\n" (node_name e.e_src)
           (node_name e.e_dst) (edge_attrs e)))
    (Cfg.out_edges b)

let func_to_dot g (f : Cfg.func) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "digraph \"%s\" {\n  label=\"%s @0x%x\";\n" f.Cfg.f_name
       f.Cfg.f_name f.Cfg.f_entry_addr);
  List.iter (emit_block buf g) f.Cfg.f_blocks;
  List.iter (emit_edges buf) f.Cfg.f_blocks;
  (* out-of-boundary targets (callees, tail-call targets) as plain ovals *)
  let members =
    List.map (fun (b : Cfg.block) -> b.Cfg.b_start) f.Cfg.f_blocks
  in
  let externals = Hashtbl.create 8 in
  List.iter
    (fun (b : Cfg.block) ->
      List.iter
        (fun (e : Cfg.edge) ->
          let d = e.e_dst.Cfg.b_start in
          if not (List.mem d members) then Hashtbl.replace externals d ())
        (Cfg.out_edges b))
    f.Cfg.f_blocks;
  Hashtbl.iter
    (fun d () ->
      let name =
        match Addr_map.find g.Cfg.funcs d with
        | Some callee -> callee.Cfg.f_name
        | None -> Printf.sprintf "0x%x" d
      in
      Buffer.add_string buf
        (Printf.sprintf "  b0x%x [shape=oval,label=\"%s\"];\n" d (escape name)))
    externals;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let graph_to_dot ?(max_funcs = 50) g =
  let buf = Buffer.create 16384 in
  Buffer.add_string buf "digraph program {\n  compound=true;\n";
  let emitted = Hashtbl.create 256 in
  let funcs = Cfg.funcs_list g in
  List.iteri
    (fun i (f : Cfg.func) ->
      if i < max_funcs then begin
        Buffer.add_string buf
          (Printf.sprintf "  subgraph \"cluster_%s\" {\n    label=\"%s\";\n"
             f.Cfg.f_name f.Cfg.f_name);
        List.iter
          (fun (b : Cfg.block) ->
            if not (Hashtbl.mem emitted b.Cfg.b_start) then begin
              Hashtbl.replace emitted b.Cfg.b_start ();
              Buffer.add_string buf "  ";
              emit_block buf g b
            end)
          f.Cfg.f_blocks;
        Buffer.add_string buf "  }\n"
      end)
    funcs;
  List.iteri
    (fun i (f : Cfg.func) ->
      if i < max_funcs then
        List.iter
          (fun (b : Cfg.block) ->
            List.iter
              (fun (e : Cfg.edge) ->
                if Hashtbl.mem emitted e.Cfg.e_dst.Cfg.b_start then begin
                  Buffer.add_string buf "  ";
                  Buffer.add_string buf
                    (Printf.sprintf "%s -> %s [%s];\n" (node_name e.e_src)
                       (node_name e.e_dst) (edge_attrs e))
                end)
              (Cfg.out_edges b))
          f.Cfg.f_blocks)
    funcs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_func g f path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (func_to_dot g f))
