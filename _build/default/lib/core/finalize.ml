module Image = Pbca_binfmt.Image
module Section = Pbca_binfmt.Section
module Task_pool = Pbca_concurrent.Task_pool
module Trace = Pbca_simsched.Trace

(* ------------------------------------------------------------------ *)
(* Step 1: jump-table over-approximation cleanup.                      *)

let table_limit g sorted_bases base =
  (* entries may extend to the next discovered table or the end of the
     enclosing section *)
  let next =
    List.find_opt (fun b -> b > base) sorted_bases
  in
  let section_end =
    match Image.find_section_at g.Cfg.image base with
    | Some s -> s.Section.addr + Section.size s
    | None -> base
  in
  match next with Some n -> min n section_end | None -> section_end

let clean_jump_tables ~pool g =
  let tables = Pbca_concurrent.Conc_bag.to_list g.Cfg.tables in
  let bases = List.sort compare (List.map (fun t -> t.Cfg.jt_base) tables) in
  let tarr = Array.of_list tables in
  Task_pool.parallel_for pool 0 (Array.length tarr) (fun i ->
      let t = tarr.(i) in
      Trace.tick g.Cfg.trace 8;
      let limit = table_limit g bases t.Cfg.jt_base in
      let max_entries = max 0 ((limit - t.Cfg.jt_base) / 4) in
      (* valid targets: the table's words up to the clamp *)
      let valid = Hashtbl.create 16 in
      for k = 0 to max_entries - 1 do
        match Image.u32 g.Cfg.image (t.Cfg.jt_base + (4 * k)) with
        | Some w -> Hashtbl.replace valid w ()
        | None -> ()
      done;
      List.iter
        (fun (e : Cfg.edge) ->
          if e.e_kind = Cfg.Indirect && not (Hashtbl.mem valid e.e_dst.Cfg.b_start)
          then Atomic.set e.e_dead true)
        (Cfg.out_edges t.Cfg.jt_block))
    ;
  ()

(* ------------------------------------------------------------------ *)
(* Step 2: remove blocks unreachable from any function entry.          *)

let reachable_blocks g =
  let seen = Hashtbl.create 4096 in
  let stack = ref [] in
  Addr_map.iter
    (fun addr _ ->
      if not (Hashtbl.mem seen addr) then begin
        Hashtbl.replace seen addr ();
        stack := addr :: !stack
      end)
    g.Cfg.funcs;
  let rec drain () =
    match !stack with
    | [] -> ()
    | addr :: rest ->
      stack := rest;
      (match Addr_map.find g.Cfg.blocks addr with
      | None -> ()
      | Some b ->
        List.iter
          (fun (e : Cfg.edge) ->
            let d = e.e_dst.Cfg.b_start in
            if not (Hashtbl.mem seen d) then begin
              Hashtbl.replace seen d ();
              stack := d :: !stack
            end)
          (Cfg.out_edges b));
      drain ()
  in
  drain ();
  seen

let prune_unreachable g =
  let seen = reachable_blocks g in
  let dead = ref [] in
  Addr_map.iter
    (fun addr b -> if not (Hashtbl.mem seen addr) then dead := (addr, b) :: !dead)
    g.Cfg.blocks;
  List.iter
    (fun (addr, (b : Cfg.block)) ->
      List.iter (fun (e : Cfg.edge) -> Atomic.set e.e_dead true) (Atomic.get b.Cfg.b_out);
      List.iter (fun (e : Cfg.edge) -> Atomic.set e.e_dead true) (Atomic.get b.Cfg.b_in);
      ignore (Addr_map.remove g.Cfg.blocks addr);
      let e = Cfg.block_end b in
      (match Addr_map.find g.Cfg.ends e with
      | Some owner when owner == b -> ignore (Addr_map.remove g.Cfg.ends e)
      | _ -> ()))
    !dead;
  !dead <> []

(* ------------------------------------------------------------------ *)
(* Step 3: function boundaries and tail-call correction.               *)

let compute_boundaries ~pool g =
  let funcs = Array.of_list (Cfg.funcs_list g) in
  Task_pool.parallel_for pool 0 (Array.length funcs) (fun i ->
      let f = funcs.(i) in
      let seen = Hashtbl.create 64 in
      let rec visit (b : Cfg.block) =
        if not (Hashtbl.mem seen b.Cfg.b_start) then begin
          Hashtbl.replace seen b.Cfg.b_start b;
          Trace.tick g.Cfg.trace 1;
          List.iter
            (fun (e : Cfg.edge) ->
              if Cfg.is_intra e.e_kind then visit e.e_dst)
            (Cfg.out_edges b)
        end
      in
      (match Addr_map.find g.Cfg.blocks f.Cfg.f_entry_addr with
      | Some entry -> visit entry
      | None -> ());
      f.Cfg.f_blocks <-
        Hashtbl.fold (fun _ b acc -> b :: acc) seen []
        |> List.sort (fun (a : Cfg.block) b -> compare a.Cfg.b_start b.Cfg.b_start))

(* Membership map: block start -> functions containing it. *)
let membership g =
  let tbl = Hashtbl.create 4096 in
  List.iter
    (fun (f : Cfg.func) ->
      List.iter
        (fun (b : Cfg.block) ->
          Hashtbl.replace tbl b.Cfg.b_start
            (f :: (Option.value (Hashtbl.find_opt tbl b.Cfg.b_start) ~default:[])))
        f.Cfg.f_blocks)
    (Cfg.funcs_list g)

  ;
  tbl

let live_in_edges (b : Cfg.block) = Cfg.in_edges b

let correct_tail_calls g =
  let members = membership g in
  let funcs_of addr = Option.value (Hashtbl.find_opt members addr) ~default:[] in
  let flips = ref 0 in
  let all_edges =
    List.concat_map
      (fun (b : Cfg.block) -> Cfg.out_edges b)
      (Cfg.blocks_list g)
  in
  let edges =
    List.sort
      (fun (a : Cfg.edge) b ->
        compare
          (a.e_src.Cfg.b_start, a.e_dst.Cfg.b_start)
          (b.e_src.Cfg.b_start, b.e_dst.Cfg.b_start))
      all_edges
  in
  List.iter
    (fun (e : Cfg.edge) ->
      if not e.e_flipped then begin
        let dst = e.e_dst.Cfg.b_start in
        match e.e_kind with
        | Cfg.Jump | Cfg.Cond_taken ->
          (* rule 1: a branch marked not-a-tail-call whose target is a
             function entry (or has an incoming CALL edge), and is not a
             self-loop to the containing function's entry *)
          let target_is_entry =
            Addr_map.mem g.Cfg.funcs dst
            || List.exists
                 (fun (ie : Cfg.edge) -> ie.e_kind = Cfg.Call)
                 (live_in_edges e.e_dst)
          in
          let self_loop =
            List.exists
              (fun (f : Cfg.func) -> f.Cfg.f_entry_addr = dst)
              (funcs_of e.e_src.Cfg.b_start)
          in
          if target_is_entry && not self_loop then begin
            e.e_kind <- Cfg.Tail_call;
            e.e_flipped <- true;
            incr flips
          end
        | Cfg.Tail_call ->
          (* rule 2: target lies within the boundary of a function that
             also contains the source *)
          let src_funcs = funcs_of e.e_src.Cfg.b_start in
          let within =
            List.exists
              (fun (f : Cfg.func) ->
                f.Cfg.f_entry_addr <> dst
                && List.exists
                     (fun (b : Cfg.block) -> b.Cfg.b_start = dst)
                     f.Cfg.f_blocks)
              src_funcs
          in
          (* rule 3: the target's only incoming edge is this one (outlined
             code) *)
          let sole_in =
            match live_in_edges e.e_dst with [ only ] -> only == e | _ -> false
          in
          if
            (within || sole_in)
            && not (Addr_map.mem g.Cfg.static_entries dst)
          then begin
            e.e_kind <-
              (match Atomic.get e.e_src.Cfg.b_term with
              | Some (Pbca_isa.Insn.Jcc _) -> Cfg.Cond_taken
              | _ -> Cfg.Jump);
            e.e_flipped <- true;
            incr flips
          end
        | Cfg.Fallthrough | Cfg.Cond_fall | Cfg.Call | Cfg.Call_fallthrough
        | Cfg.Indirect ->
          ()
      end)
    edges;
  !flips > 0

(* ------------------------------------------------------------------ *)
(* Step 4: prune functions without incoming inter-procedural edges.    *)

let prune_functions g =
  let doomed = ref [] in
  Addr_map.iter
    (fun addr (f : Cfg.func) ->
      if (not f.Cfg.f_from_symtab) && addr <> g.Cfg.image.Image.entry then begin
        let has_interproc_in =
          match Addr_map.find g.Cfg.blocks addr with
          | None -> false
          | Some b ->
            List.exists
              (fun (e : Cfg.edge) ->
                match e.e_kind with
                | Cfg.Call | Cfg.Tail_call -> true
                | _ -> false)
              (live_in_edges b)
        in
        if not has_interproc_in then doomed := addr :: !doomed
      end)
    g.Cfg.funcs;
  List.iter (fun addr -> ignore (Addr_map.remove g.Cfg.funcs addr)) !doomed;
  !doomed <> []

(* ------------------------------------------------------------------ *)

let run ~pool g =
  clean_jump_tables ~pool g;
  ignore (prune_unreachable g);
  (* tail-call correction: boundaries and rules alternate; each edge flips
     at most once so this converges quickly *)
  let rec fix n =
    compute_boundaries ~pool g;
    let flipped = correct_tail_calls g in
    if flipped && n < 8 then fix (n + 1)
  in
  fix 0;
  (* removing functions can strand their blocks; removing blocks can strip
     a function's last incoming call — iterate to a (small) fixed point *)
  let rec prune n =
    let a = prune_functions g in
    let b = if a then prune_unreachable g else false in
    if (a || b) && n < 8 then prune (n + 1)
  in
  prune 0;
  compute_boundaries ~pool g;
  (* instruction counts are approximate during parsing (splits shrink blocks
     concurrently); recompute them from the final block extents *)
  let blocks = Array.of_list (Cfg.blocks_list g) in
  Task_pool.parallel_for pool 0 (Array.length blocks) (fun i ->
      let b = blocks.(i) in
      Atomic.set b.Cfg.b_ninsns (List.length (Disasm.block_insns g b)))
