let parse ?config ?trace image =
  let pool = Pbca_concurrent.Task_pool.create ~threads:1 in
  Parallel.parse ?config ?trace ~pool image

let parse_and_finalize ?config ?trace image =
  let pool = Pbca_concurrent.Task_pool.create ~threads:1 in
  Parallel.parse_and_finalize ?config ?trace ~pool image
