(** Binary code similarity (paper Section 9, "benefiting other
    applications"): software-vulnerability search computes similarity
    between a known-vulnerable function and every function of a corpus,
    using the same instruction/control-flow/data-flow characteristics that
    BinFeat extracts.

    Function feature vectors are sparse maps; similarity is cosine. The
    corpus search parallelizes trivially once CFGs exist (read-only after
    finalization). *)

type vector = (string, float) Hashtbl.t

val function_vector :
  Pbca_core.Cfg.t -> Pbca_core.Cfg.func -> vector
(** Instruction n-grams, degree/edge-kind shapes, loop structure and
    liveness counts of one function, TF-weighted. *)

val cosine : vector -> vector -> float

type hit = {
  h_binary : string;
  h_func : string;
  h_entry : int;
  h_score : float;
}

val search :
  pool:Pbca_concurrent.Task_pool.t ->
  query:vector ->
  (string * Pbca_core.Cfg.t) list ->
  top:int ->
  hit list
(** Rank every function of every (named) parsed binary against the query
    vector; return the [top] best hits, best first. *)
