lib/binfeat/similarity.mli: Hashtbl Pbca_concurrent Pbca_core
