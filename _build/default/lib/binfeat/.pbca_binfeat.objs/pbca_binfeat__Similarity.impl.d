lib/binfeat/similarity.ml: Array Binfeat Hashtbl List Pbca_analysis Pbca_concurrent Pbca_core Pbca_simsched
