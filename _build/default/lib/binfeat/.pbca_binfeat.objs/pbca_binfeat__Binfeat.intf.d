lib/binfeat/binfeat.mli: Hashtbl Pbca_analysis Pbca_binfmt Pbca_concurrent Pbca_core Pbca_simsched
