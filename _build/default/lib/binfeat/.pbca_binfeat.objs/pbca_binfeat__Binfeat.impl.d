lib/binfeat/binfeat.ml: Array Format Hashtbl List Option Pbca_analysis Pbca_concurrent Pbca_core Pbca_isa Pbca_simsched Printf Unix
