module Cfg = Pbca_core.Cfg

type vector = (string, float) Hashtbl.t

type hit = {
  h_binary : string;
  h_func : string;
  h_entry : int;
  h_score : float;
}

let function_vector g (f : Cfg.func) : vector =
  let fv = Pbca_analysis.Func_view.make g f in
  let trace = Pbca_simsched.Trace.disabled in
  let counts = Hashtbl.create 64 in
  let add tbl = Hashtbl.iter (fun k v -> Binfeat.bump counts k v) tbl in
  add (Binfeat.insn_features g trace fv);
  add (Binfeat.cf_features g trace fv);
  add (Binfeat.df_features g trace fv);
  (* TF weighting: dampen high-frequency features *)
  let vec = Hashtbl.create (Hashtbl.length counts) in
  Hashtbl.iter
    (fun k v -> Hashtbl.replace vec k (log (1.0 +. float_of_int v)))
    counts;
  vec

let cosine (a : vector) (b : vector) =
  let dot = ref 0.0 and na = ref 0.0 and nb = ref 0.0 in
  Hashtbl.iter
    (fun k va ->
      na := !na +. (va *. va);
      match Hashtbl.find_opt b k with
      | Some vb -> dot := !dot +. (va *. vb)
      | None -> ())
    a;
  Hashtbl.iter (fun _ vb -> nb := !nb +. (vb *. vb)) b;
  if !na = 0.0 || !nb = 0.0 then 0.0 else !dot /. sqrt (!na *. !nb)

let search ~pool ~query binaries ~top =
  let all =
    List.concat_map
      (fun (name, g) ->
        List.map (fun f -> (name, g, f)) (Cfg.funcs_list g))
      binaries
  in
  let arr = Array.of_list all in
  let scores = Array.make (Array.length arr) 0.0 in
  Pbca_concurrent.Task_pool.parallel_for pool 0 (Array.length arr) (fun i ->
      let _, g, f = arr.(i) in
      scores.(i) <- cosine query (function_vector g f));
  let hits =
    Array.to_list
      (Array.mapi
         (fun i (name, _, (f : Cfg.func)) ->
           {
             h_binary = name;
             h_func = f.f_name;
             h_entry = f.f_entry_addr;
             h_score = scores.(i);
           })
         arr)
  in
  List.sort (fun a b -> compare b.h_score a.h_score) hits
  |> List.filteri (fun i _ -> i < top)
