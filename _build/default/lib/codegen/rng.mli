(** Deterministic pseudo-random number generator (SplitMix64).

    Every generated binary is a pure function of its profile's seed, so
    corpora are reproducible across runs and machines — a requirement for
    the correctness experiments, which compare a parsed CFG against ground
    truth emitted at generation time. *)

type t

val create : int -> t
val split : t -> t
(** Derive an independent stream (e.g. one per function). *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n). [n] must be positive. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [lo, hi]. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val choose : t -> 'a list -> 'a
val choose_arr : t -> 'a array -> 'a
val float : t -> float
(** Uniform in [0, 1). *)
