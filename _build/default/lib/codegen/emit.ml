module Insn = Pbca_isa.Insn
module Reg = Pbca_isa.Reg
module Codec = Pbca_isa.Codec
module Image = Pbca_binfmt.Image
module Section = Pbca_binfmt.Section
module Symbol = Pbca_binfmt.Symbol
module Symtab = Pbca_binfmt.Symtab
module Mangle = Pbca_binfmt.Mangle
module Dbg = Pbca_debuginfo.Types

type result = {
  image : Image.t;
  ground_truth : Ground_truth.t;
  debug : Dbg.t;
}

type label =
  | L_block of int * int  (* fidx, bidx *)
  | L_func of int
  | L_stub of int
  | L_table of int
  | L_fptable

type mark = M_jt_jump of int | M_nr_call of int (* callee fidx *)

type item =
  | I of Insn.t
  | Raw of Bytes.t  (* data-in-text blob *)
  | Jmp_to of label
  | Jcc_to of Insn.cond * label
  | Call_to of label
  | Lea_to of Reg.t * label
  | Marked of mark * item

(* emission units, in layout order *)
type unit_kind =
  | U_func of int
  | U_stub of int
  | U_cold of int (* fidx *)
  | U_data of int (* blob after function fidx *)

type eunit = {
  kind : unit_kind;
  items : item list;
  (* block index boundaries, as (bidx, item offset) pairs; item offsets are
     turned into addresses once the unit's base address is known *)
  block_starts : (int * int) list; (* bidx, index into items *)
}

let rec item_size = function
  | I i -> Codec.encoded_length i
  | Raw b -> Bytes.length b
  | Jmp_to _ | Call_to _ -> 5
  | Jcc_to _ -> 6
  | Lea_to _ -> 6
  | Marked (_, it) -> item_size it

let r2 = Reg.of_int 2
let r3 = Reg.of_int 3
let r4 = Reg.of_int 4
let r5 = Reg.of_int 5
let r6 = Reg.of_int 6
let r7 = Reg.of_int 7
let r8 = Reg.of_int 8

(* ------------------------------------------------------------------ *)
(* Pass 0: build item lists.                                           *)

type build_state = {
  spec : Spec.t;
  mutable n_tables : int;
  mutable table_targets : (int * label list * bool) list;
      (* tid, entry labels, resolvable *)
}

let alloc_table st labels ~resolvable =
  let tid = st.n_tables in
  st.n_tables <- tid + 1;
  st.table_targets <- (tid, labels, resolvable) :: st.table_targets;
  tid

(* Does this sharer tear its frame down before jumping into the stub? *)
let stub_leave (stub : Spec.sspec) fidx =
  match stub.ss_mode with
  | Spec.Shared -> false
  | Spec.Tail -> true
  | Spec.Mixed ->
    (* deterministic split: alternate along the sharer list *)
    let rec pos i = function
      | [] -> 0
      | x :: _ when x = fidx -> i
      | _ :: rest -> pos (i + 1) rest
    in
    pos 0 stub.ss_sharers mod 2 = 0

let term_items st ~fidx ~bidx ~frame (term : Spec.term) : item list =
  match term with
  | Spec.T_ret -> (if frame then [ I Insn.Leave ] else []) @ [ I Insn.Ret ]
  | Spec.T_halt -> [ I Insn.Halt ]
  | Spec.T_jmp j -> [ Jmp_to (L_block (fidx, j)) ]
  | Spec.T_cond (c, j) -> [ Jcc_to (c, L_block (fidx, j)) ]
  | Spec.T_call g -> [ Call_to (L_func g) ]
  | Spec.T_call_noret g -> [ Marked (M_nr_call g, Call_to (L_func g)) ]
  | Spec.T_icall slot ->
    let n = Array.length st.spec.sp_fptable in
    [
      I (Insn.Mov_ri (r8, slot mod n));
      Lea_to (r6, L_fptable);
      I (Insn.Load_idx (r7, r6, r8, 4));
      I (Insn.Call_ind r7);
    ]
  | Spec.T_tailcall g ->
    (if frame then [ I Insn.Leave ] else []) @ [ Jmp_to (L_func g) ]
  | Spec.T_stub sid ->
    let stub = st.spec.sp_stubs.(sid) in
    (if stub_leave stub fidx then [ I Insn.Leave ] else [])
    @ [ Jmp_to (L_stub sid) ]
  | Spec.T_jumptable { targets; spilled } ->
    let labels = List.map (fun j -> L_block (fidx, j)) targets in
    let tid = alloc_table st labels ~resolvable:(not spilled) in
    let k = List.length targets in
    [ I (Insn.Cmp_ri (r2, k)); Jcc_to (Ge, L_block (fidx, bidx + 1)) ]
    @ [ Lea_to (r3, L_table tid) ]
    @ (if spilled then
         [
           I (Insn.Push r3);
           I (Insn.Pop r5);
           I (Insn.Load_idx (r4, r5, r2, 4));
         ]
       else [ I (Insn.Load_idx (r4, r3, r2, 4)) ])
    @ [ Marked (M_jt_jump tid, I (Insn.Jmp_ind r4)) ]
  | Spec.T_fall -> []

let build_units (spec : Spec.t) st : eunit list =
  let n_funcs = Array.length spec.sp_funcs in
  let n_stubs = Array.length spec.sp_stubs in
  let stub_every =
    if n_stubs = 0 then max_int else max 1 (n_funcs / n_stubs)
  in
  let units = ref [] in
  let emitted_stubs = ref 0 in
  let maybe_stub i =
    if !emitted_stubs < n_stubs && (i + 1) mod stub_every = 0 then begin
      let sid = !emitted_stubs in
      incr emitted_stubs;
      let stub = spec.sp_stubs.(sid) in
      let items =
        List.map (fun ins -> I ins) stub.ss_body
        @ [ I (if stub.ss_ret then Insn.Ret else Insn.Halt) ]
      in
      units := { kind = U_stub sid; items; block_starts = [] } :: !units
    end
  in
  for fidx = 0 to n_funcs - 1 do
    let fs = spec.sp_funcs.(fidx) in
    let items = ref [] in
    let block_starts = ref [] in
    let off = ref 0 in
    let push it =
      items := it :: !items;
      incr off
    in
    Array.iteri
      (fun bidx (b : Spec.bspec) ->
        if Some bidx <> fs.fs_cold then begin
          block_starts := (bidx, !off) :: !block_starts;
          if bidx = 0 && fs.fs_frame then push (I (Insn.Enter 64));
          List.iter (fun ins -> push (I ins)) b.bs_body;
          List.iter push (term_items st ~fidx ~bidx ~frame:fs.fs_frame b.bs_term)
        end)
      fs.fs_blocks;
    units :=
      {
        kind = U_func fidx;
        items = List.rev !items;
        block_starts = List.rev !block_starts;
      }
      :: !units;
    (match spec.sp_data.(fidx) with
    | Some blob ->
      units :=
        { kind = U_data fidx; items = [ Raw blob ]; block_starts = [] }
        :: !units
    | None -> ());
    maybe_stub fidx
  done;
  (* leftover stubs, then the cold region *)
  while !emitted_stubs < n_stubs do
    let sid = !emitted_stubs in
    incr emitted_stubs;
    let stub = spec.sp_stubs.(sid) in
    let items =
      List.map (fun ins -> I ins) stub.ss_body
      @ [ I (if stub.ss_ret then Insn.Ret else Insn.Halt) ]
    in
    units := { kind = U_stub sid; items; block_starts = [] } :: !units
  done;
  for fidx = 0 to n_funcs - 1 do
    let fs = spec.sp_funcs.(fidx) in
    match fs.fs_cold with
    | None -> ()
    | Some c ->
      let b = fs.fs_blocks.(c) in
      let items =
        List.map (fun ins -> I ins) b.bs_body
        @ term_items st ~fidx ~bidx:c ~frame:fs.fs_frame b.bs_term
      in
      units :=
        { kind = U_cold fidx; items; block_starts = [ (c, 0) ] } :: !units
  done;
  List.rev !units

(* ------------------------------------------------------------------ *)
(* Pass 1: assign addresses.                                           *)

let text_base = 0x1000
let align16 a = (a + 15) land lnot 15

type layout = {
  unit_addrs : (unit_kind * int) list;
  block_addr : (int * int, int) Hashtbl.t; (* (fidx,bidx) -> addr *)
  block_end : (int * int, int) Hashtbl.t;
  func_addr : int array;
  stub_addr : int array;
  stub_end : int array;
  table_addr : int array;
  fptable_addr : int;
  rodata_base : int;
  text_end : int;
  jt_jump_addr : (int, int) Hashtbl.t; (* tid -> addr of Jmp_ind *)
  nr_calls : (int * int) list; (* call insn addr, callee fidx *)
}

let assign_addresses (spec : Spec.t) st (units : eunit list) : layout =
  let block_addr = Hashtbl.create 1024 in
  let block_end = Hashtbl.create 1024 in
  let func_addr = Array.make (Array.length spec.sp_funcs) 0 in
  let stub_addr = Array.make (Array.length spec.sp_stubs) 0 in
  let stub_end = Array.make (Array.length spec.sp_stubs) 0 in
  let jt_jump_addr = Hashtbl.create 64 in
  let nr_calls = ref [] in
  let unit_addrs = ref [] in
  let addr = ref text_base in
  List.iter
    (fun u ->
      addr := align16 !addr;
      let base = !addr in
      unit_addrs := (u.kind, base) :: !unit_addrs;
      let fidx_of_unit =
        match u.kind with
        | U_func f | U_cold f -> Some f
        | U_stub _ | U_data _ -> None
      in
      (match u.kind with
      | U_func f -> func_addr.(f) <- base
      | U_stub s -> stub_addr.(s) <- base
      | U_cold _ | U_data _ -> ());
      (* walk items, tracking block boundaries *)
      let starts = u.block_starts in
      let rec walk items idx starts prev_block =
        (* close the previous block when a new one starts or at the end *)
        match items with
        | [] ->
          (match prev_block with
          | Some b ->
            (match fidx_of_unit with
            | Some f -> Hashtbl.replace block_end (f, b) !addr
            | None -> ())
          | None -> ())
        | it :: rest ->
          let starts, prev_block =
            match starts with
            | (b, i) :: more when i = idx ->
              (match (prev_block, fidx_of_unit) with
              | Some pb, Some f -> Hashtbl.replace block_end (f, pb) !addr
              | _ -> ());
              (match fidx_of_unit with
              | Some f -> Hashtbl.replace block_addr (f, b) !addr
              | None -> ());
              (more, Some b)
            | _ -> (starts, prev_block)
          in
          (* record marks at the item's address *)
          let rec note = function
            | Marked (M_jt_jump tid, inner) ->
              Hashtbl.replace jt_jump_addr tid !addr;
              note inner
            | Marked (M_nr_call callee, inner) ->
              nr_calls := (!addr, callee) :: !nr_calls;
              note inner
            | _ -> ()
          in
          note it;
          addr := !addr + item_size it;
          walk rest (idx + 1) starts prev_block
      in
      walk u.items 0 starts None;
      match u.kind with
      | U_stub s -> stub_end.(s) <- !addr
      | U_func _ | U_cold _ | U_data _ -> ())
    units;
  let text_end = !addr in
  let rodata_base = align16 (text_end + 0x1000) in
  let table_addr = Array.make st.n_tables 0 in
  let roff = ref rodata_base in
  List.iter
    (fun (tid, labels, _) ->
      table_addr.(tid) <- !roff;
      roff := !roff + (4 * List.length labels))
    (List.sort compare st.table_targets);
  let fptable_addr = !roff in
  {
    unit_addrs = List.rev !unit_addrs;
    block_addr;
    block_end;
    func_addr;
    stub_addr;
    stub_end;
    table_addr;
    fptable_addr;
    rodata_base;
    text_end;
    jt_jump_addr;
    nr_calls = !nr_calls;
  }

(* ------------------------------------------------------------------ *)
(* Pass 2: resolve and encode.                                         *)

let resolve lay = function
  | L_block (f, b) -> Hashtbl.find lay.block_addr (f, b)
  | L_func f -> lay.func_addr.(f)
  | L_stub s -> lay.stub_addr.(s)
  | L_table t -> lay.table_addr.(t)
  | L_fptable -> lay.fptable_addr

let encode_text (spec : Spec.t) st (units : eunit list) lay : Bytes.t =
  ignore spec;
  ignore st;
  let buf = Buffer.create 65536 in
  let addr = ref text_base in
  let pad_to target =
    while !addr < target do
      Codec.encode buf Insn.Nop;
      incr addr
    done
  in
  List.iter
    (fun u ->
      let base = List.assoc u.kind lay.unit_addrs in
      pad_to base;
      let rec emit_item it =
        match it with
        | Marked (_, inner) -> emit_item inner
        | I ins ->
          Codec.encode buf ins;
          addr := !addr + Codec.encoded_length ins
        | Raw b ->
          Buffer.add_bytes buf b;
          addr := !addr + Bytes.length b
        | Jmp_to l ->
          let rel = resolve lay l - (!addr + 5) in
          Codec.encode buf (Insn.Jmp rel);
          addr := !addr + 5
        | Call_to l ->
          let rel = resolve lay l - (!addr + 5) in
          Codec.encode buf (Insn.Call rel);
          addr := !addr + 5
        | Jcc_to (c, l) ->
          let rel = resolve lay l - (!addr + 6) in
          Codec.encode buf (Insn.Jcc (c, rel));
          addr := !addr + 6
        | Lea_to (r, l) ->
          let disp = resolve lay l - (!addr + 6) in
          Codec.encode buf (Insn.Lea (r, disp));
          addr := !addr + 6
      in
      List.iter emit_item u.items)
    units;
  Buffer.to_bytes buf

let encode_rodata st lay : Bytes.t =
  let size = lay.fptable_addr + 4 * 64 - lay.rodata_base in
  let data = Bytes.make size '\x00' in
  let put_u32 off v =
    Bytes.set data off (Char.chr (v land 0xff));
    Bytes.set data (off + 1) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set data (off + 2) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set data (off + 3) (Char.chr ((v lsr 24) land 0xff))
  in
  List.iter
    (fun (tid, labels, _) ->
      let base = lay.table_addr.(tid) - lay.rodata_base in
      List.iteri (fun i l -> put_u32 (base + (4 * i)) (resolve lay l)) labels)
    st.table_targets;
  data

let fill_fptable (spec : Spec.t) lay data =
  let put_u32 off v =
    Bytes.set data off (Char.chr (v land 0xff));
    Bytes.set data (off + 1) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set data (off + 2) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set data (off + 3) (Char.chr ((v lsr 24) land 0xff))
  in
  Array.iteri
    (fun i f ->
      put_u32 (lay.fptable_addr - lay.rodata_base + (4 * i)) lay.func_addr.(f))
    spec.sp_fptable

(* ------------------------------------------------------------------ *)
(* Ground truth.                                                       *)

let block_range lay f b =
  (Hashtbl.find lay.block_addr (f, b), Hashtbl.find lay.block_end (f, b))

(* Classification of each stub after the parser's tail-call correction
   rules have converged (paper Section 5.4):
   - no reachable frame-tearing sharer: the stub is plain shared code in
     every reachable sharer's boundary;
   - at least one tear-down entry and >= 2 reachable sharers: the stub is
     its own (symbol-less) function, all entries are tail calls (rule 1
     flips the plain jumps);
   - exactly one reachable sharer, tearing down: rule 3 (outlined code)
     flips the lone tail call back, merging the stub into that sharer. *)
type stub_class =
  | Stub_shared of int list  (* reachable sharer fidxs owning the range *)
  | Stub_function
  | Stub_merged of int
  | Stub_dead

let classify_stubs (spec : Spec.t) returns =
  Array.mapi
    (fun sid (stub : Spec.sspec) ->
      let reachable =
        List.filteri
          (fun _pos f ->
            let fs = spec.sp_funcs.(f) in
            let roots =
              0 :: (match fs.fs_secondary with Some s -> [ s ] | None -> [])
            in
            List.exists
              (fun root ->
                let reach = Spec.block_reachable spec ~returns f root in
                Array.exists
                  (fun b -> b)
                  (Array.mapi
                     (fun bi r ->
                       r && fs.fs_blocks.(bi).bs_term = Spec.T_stub sid)
                     reach))
              roots)
          stub.ss_sharers
      in
      let tearing = List.filter (fun f -> stub_leave stub f) reachable in
      match (reachable, tearing) with
      | [], _ -> Stub_dead
      | rs, [] -> Stub_shared rs
      | [ f ], _ -> Stub_merged f
      | _, _ -> Stub_function)
    spec.sp_stubs

let ground_truth (spec : Spec.t) st lay : Ground_truth.t =
  let returns = Spec.spec_returns spec in
  let stub_classes = classify_stubs spec returns in
  let funcs = ref [] in
  let pretty_of fidx = spec.sp_funcs.(fidx).fs_name in
  Array.iteri
    (fun fidx (fs : Spec.fspec) ->
      let reach = Spec.block_reachable spec ~returns fidx 0 in
      let ranges = ref [] in
      Array.iteri
        (fun b ok ->
          if ok && Some b <> fs.fs_cold then
            ranges := block_range lay fidx b :: !ranges)
        reach;
      (* stubs this function owns (shared or merged) contribute their range *)
      Array.iteri
        (fun b ok ->
          if ok then
            match fs.fs_blocks.(b).bs_term with
            | Spec.T_stub sid -> (
              match stub_classes.(sid) with
              | Stub_shared rs when List.mem fidx rs ->
                ranges := (lay.stub_addr.(sid), lay.stub_end.(sid)) :: !ranges
              | Stub_merged f when f = fidx ->
                ranges := (lay.stub_addr.(sid), lay.stub_end.(sid)) :: !ranges
              | Stub_shared _ | Stub_merged _ | Stub_function | Stub_dead -> ())
            | _ -> ())
        reach;
      funcs :=
        {
          Ground_truth.gf_name = pretty_of fidx;
          gf_entry = lay.func_addr.(fidx);
          gf_ranges = Ground_truth.coalesce !ranges;
          gf_returns = returns.(fidx);
          gf_in_symtab = true;
          gf_cold_parent = None;
        }
        :: !funcs;
      (* secondary entry: its own function sharing the tail *)
      (match fs.fs_secondary with
      | Some s ->
        let reach2 = Spec.block_reachable spec ~returns fidx s in
        let ranges2 = ref [] in
        Array.iteri
          (fun b ok ->
            if ok && Some b <> fs.fs_cold then
              ranges2 := block_range lay fidx b :: !ranges2)
          reach2;
        let returns2 =
          Array.exists
            (fun x -> x)
            (Array.mapi
               (fun b ok ->
                 ok
                 &&
                 match fs.fs_blocks.(b).bs_term with
                 | Spec.T_ret -> true
                 | Spec.T_tailcall g -> returns.(g)
                 | Spec.T_stub sid -> spec.sp_stubs.(sid).ss_ret
                 (* a branch to block 0 is a tail call to the primary
                    entry, so the secondary inherits its status *)
                 | Spec.T_jmp 0 | Spec.T_cond (_, 0) -> returns.(fidx)
                 | _ -> false)
               reach2)
        in
        funcs :=
          {
            Ground_truth.gf_name = pretty_of fidx ^ "__e2";
            gf_entry = Hashtbl.find lay.block_addr (fidx, s);
            gf_ranges = Ground_truth.coalesce !ranges2;
            gf_returns = returns2;
            gf_in_symtab = true;
            gf_cold_parent = None;
          }
          :: !funcs
      | None -> ());
      (* cold fragment: its own function in the parser's view *)
      match fs.fs_cold with
      | Some c ->
        funcs :=
          {
            Ground_truth.gf_name = pretty_of fidx ^ ".cold";
            gf_entry = Hashtbl.find lay.block_addr (fidx, c);
            gf_ranges = [ block_range lay fidx c ];
            gf_returns = false;
            gf_in_symtab = true;
            gf_cold_parent = Some (pretty_of fidx);
          }
          :: !funcs
      | None -> ())
    spec.sp_funcs;
  (* stubs entered by tail calls become their own (symbol-less) functions *)
  Array.iteri
    (fun sid (stub : Spec.sspec) ->
      match stub_classes.(sid) with
      | Stub_function ->
        funcs :=
          {
            Ground_truth.gf_name = Printf.sprintf "stub_%d" sid;
            gf_entry = lay.stub_addr.(sid);
            gf_ranges = [ (lay.stub_addr.(sid), lay.stub_end.(sid)) ];
            gf_returns = stub.ss_ret;
            gf_in_symtab = false;
            gf_cold_parent = None;
          }
          :: !funcs
      | Stub_shared _ | Stub_merged _ | Stub_dead -> ())
    spec.sp_stubs;
  (* tables and call sites sitting in dead code (e.g. after a call to a
     non-returning function) are invisible to any reachability-based parser;
     keep only the ones inside some function's true ranges *)
  let all_ranges =
    List.concat_map (fun (f : Ground_truth.gfun) -> f.gf_ranges) !funcs
  in
  let live addr =
    List.exists (fun (lo, hi) -> addr >= lo && addr < hi) all_ranges
  in
  let tables =
    List.filter_map
      (fun (tid, labels, resolvable) ->
        let jump_addr = Hashtbl.find lay.jt_jump_addr tid in
        if live jump_addr then
          Some
            {
              Ground_truth.jt_jump_addr = jump_addr;
              jt_table_addr = lay.table_addr.(tid);
              jt_entries = List.length labels;
              jt_targets = List.map (resolve lay) labels;
              jt_resolvable = resolvable;
            }
        else None)
      (List.sort compare st.table_targets)
  in
  let nr_calls =
    List.filter_map
      (fun (addr, callee) ->
        if live addr then
          Some
            {
              Ground_truth.nc_call_addr = addr;
              nc_callee = lay.func_addr.(callee);
              nc_matchable = not returns.(callee);
            }
        else None)
      lay.nr_calls
  in
  {
    Ground_truth.gt_binary = spec.sp_profile.name;
    gt_funcs = List.rev !funcs;
    gt_tables = tables;
    gt_nr_calls = nr_calls;
  }

(* ------------------------------------------------------------------ *)
(* Symbol table.                                                       *)

let arg_types fidx : Mangle.arg_type list =
  List.init (fidx mod 4) (fun k ->
      match k mod 3 with 0 -> Mangle.Int | 1 -> Mangle.Ptr | _ -> Mangle.Float)

let build_symtab (spec : Spec.t) lay : Symtab.t =
  let tab = Symtab.create () in
  let add s = ignore (Symtab.insert tab s) in
  Array.iteri
    (fun fidx (fs : Spec.fspec) ->
      (* plain names for the ABI-visible ones so the non-returning name
         matching can find exit/abort and miss error, as in real binaries *)
      let mangled =
        if fs.fs_noreturn_leaf || fs.fs_error_style || fidx = 0 then fs.fs_name
        else Mangle.mangle fs.fs_name (arg_types fidx)
      in
      let size =
        (* span of the contiguous main region: entry to end of last
           non-cold block *)
        let last = ref lay.func_addr.(fidx) in
        Array.iteri
          (fun b _ ->
            if Some b <> fs.fs_cold then
              match Hashtbl.find_opt lay.block_end (fidx, b) with
              | Some e -> last := max !last e
              | None -> ())
          fs.fs_blocks;
        !last - lay.func_addr.(fidx)
      in
      add (Symbol.make ~size ~kind:Func mangled lay.func_addr.(fidx));
      (match fs.fs_secondary with
      | Some s ->
        add
          (Symbol.make ~kind:Func (fs.fs_name ^ "__e2")
             (Hashtbl.find lay.block_addr (fidx, s)))
      | None -> ());
      match fs.fs_cold with
      | Some c ->
        add
          (Symbol.make ~kind:Func (fs.fs_name ^ ".cold")
             (Hashtbl.find lay.block_addr (fidx, c)))
      | None -> ())
    spec.sp_funcs;
  (* object symbols for the rodata blobs *)
  Array.iteri
    (fun tid addr -> add (Symbol.make ~kind:Object (Printf.sprintf "jt_%d" tid) addr))
    lay.table_addr;
  add (Symbol.make ~kind:Object "fptable" lay.fptable_addr);
  tab

(* ------------------------------------------------------------------ *)
(* Debug information (DWARF semantics: cold fragments belong to their
   parent, paper Section 8.1).                                         *)

let build_debug (spec : Spec.t) lay (gt : Ground_truth.t) : Dbg.t =
  let p = spec.sp_profile in
  let n_cus = max 1 p.n_cus in
  let cu_funcs = Array.make n_cus [] in
  let cu_lines = Array.make n_cus [] in
  let rng = Rng.create (p.seed lxor 0x5EED) in
  Array.iteri
    (fun fidx (fs : Spec.fspec) ->
      let cu = fs.fs_cu mod n_cus in
      let file = Printf.sprintf "src_%03d.c" cu in
      let gf =
        match Ground_truth.find_func gt lay.func_addr.(fidx) with
        | Some g -> g
        | None -> assert false
      in
      let cold_ranges =
        match fs.fs_cold with
        | Some c ->
          let lo, hi = block_range lay fidx c in
          [ { Dbg.lo; hi } ]
        | None -> []
      in
      let ranges =
        List.map (fun (lo, hi) -> { Dbg.lo; hi }) gf.Ground_truth.gf_ranges
        @ cold_ranges
      in
      let decl_line = 10 * (fidx + 1) in
      (* line table: split the main contiguous span into lines_per_func
         consecutive ranges *)
      let lines =
        match ranges with
        | [] -> []
        | first :: _ ->
          let span = first.Dbg.hi - first.Dbg.lo in
          let k = max 1 (min p.lines_per_func (span / 4)) in
          let step = max 1 (span / k) in
          List.init k (fun j ->
              let lo = first.Dbg.lo + (j * step) in
              let hi = if j = k - 1 then first.Dbg.hi else lo + step in
              {
                Dbg.range = { Dbg.lo; hi };
                file;
                line = decl_line + j;
              })
      in
      let inlines =
        if Rng.bool rng p.p_inline then
          match ranges with
          | { Dbg.lo; hi } :: _ when hi - lo > 16 ->
            let mid = lo + ((hi - lo) / 2) in
            [
              {
                Dbg.callee = Printf.sprintf "inl_%d" fidx;
                call_file = file;
                call_line = decl_line + 1;
                inl_ranges = [ { Dbg.lo = lo + 4; hi = mid } ];
                children =
                  (if Rng.bool rng 0.4 then
                     [
                       {
                         Dbg.callee = Printf.sprintf "inl_%d_inner" fidx;
                         call_file = file;
                         call_line = decl_line + 2;
                         inl_ranges = [ { Dbg.lo = lo + 8; hi = lo + ((mid - lo) / 2) } ];
                         children = [];
                       };
                     ]
                   else []);
              };
            ]
          | _ -> []
        else []
      in
      let fi =
        {
          Dbg.fi_name = fs.fs_name;
          fi_ranges = ranges;
          fi_decl_file = file;
          fi_decl_line = decl_line;
          fi_inlines = inlines;
        }
      in
      cu_funcs.(cu) <- fi :: cu_funcs.(cu);
      cu_lines.(cu) <- lines @ cu_lines.(cu))
    spec.sp_funcs;
  (* compilation units vary wildly in size in real projects (template-heavy
     translation units vs. small C files); the imbalance is what limits the
     paper's DWARF-phase scaling (Figure 2's idle gaps). Deterministic
     skew: most CUs near the base size, every 13th one a whale. *)
  let pad_of cu =
    let f = 1 + (cu * 7 mod 10) in
    let f = if cu mod 17 = 0 then f * 6 else f in
    p.debug_pad_per_cu * f / 4
  in
  {
    Dbg.cus =
      Array.init n_cus (fun cu ->
          {
            Dbg.cu_name = Printf.sprintf "src_%03d.c" cu;
            cu_funcs = List.rev cu_funcs.(cu);
            cu_lines = List.rev cu_lines.(cu);
            cu_pad = pad_of cu;
          });
  }

(* ------------------------------------------------------------------ *)

let emit (spec : Spec.t) : result =
  let st = { spec; n_tables = 0; table_targets = [] } in
  let units = build_units spec st in
  let lay = assign_addresses spec st units in
  let text = encode_text spec st units lay in
  let rodata = encode_rodata st lay in
  fill_fptable spec lay rodata;
  let gt = ground_truth spec st lay in
  let dbg = build_debug spec lay gt in
  let debug_bytes = Pbca_debuginfo.Codec.encode dbg in
  let gt_w = Pbca_binfmt.Bio.W.create () in
  Ground_truth.write gt_w gt;
  let symtab = build_symtab spec lay in
  let sections =
    [
      Section.make ~name:".text" ~addr:text_base text;
      Section.make ~name:".rodata" ~addr:lay.rodata_base rodata;
      Section.make ~name:".debug" ~addr:0 debug_bytes;
      Section.make ~name:".ground" ~addr:0 (Pbca_binfmt.Bio.W.contents gt_w);
    ]
  in
  let image =
    Image.make ~name:spec.sp_profile.name ~entry:lay.func_addr.(0)
      ~sections symtab
  in
  { image; ground_truth = gt; debug = dbg }

let generate (p : Profile.t) : result = emit (Spec.generate p)
