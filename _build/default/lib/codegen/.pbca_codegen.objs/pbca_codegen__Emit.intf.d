lib/codegen/emit.mli: Ground_truth Pbca_binfmt Pbca_debuginfo Profile Spec
