lib/codegen/spec.mli: Bytes Pbca_isa Profile
