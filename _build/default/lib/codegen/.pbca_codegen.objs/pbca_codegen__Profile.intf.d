lib/codegen/profile.mli:
