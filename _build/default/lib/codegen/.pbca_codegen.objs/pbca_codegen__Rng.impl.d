lib/codegen/rng.ml: Array Int64 List
