lib/codegen/ground_truth.mli: Pbca_binfmt
