lib/codegen/emit.ml: Array Buffer Bytes Char Ground_truth Hashtbl List Pbca_binfmt Pbca_debuginfo Pbca_isa Printf Profile Rng Spec
