lib/codegen/ground_truth.ml: List Pbca_binfmt
