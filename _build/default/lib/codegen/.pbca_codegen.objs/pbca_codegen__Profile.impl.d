lib/codegen/profile.ml: Printf
