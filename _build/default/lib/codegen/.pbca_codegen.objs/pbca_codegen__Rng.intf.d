lib/codegen/rng.mli:
