lib/codegen/spec.ml: Array Bytes Char List Pbca_isa Printf Profile Rng
