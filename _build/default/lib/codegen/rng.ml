type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_u64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next_u64 t }

let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_u64 t) 1) (Int64.of_int n))

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range";
  lo + int t (hi - lo + 1)

let float t =
  Int64.to_float (Int64.shift_right_logical (next_u64 t) 11)
  /. 9007199254740992.0 (* 2^53 *)

let bool t p = float t < p

let choose t xs =
  match xs with [] -> invalid_arg "Rng.choose" | _ -> List.nth xs (int t (List.length xs))

let choose_arr t xs =
  if Array.length xs = 0 then invalid_arg "Rng.choose_arr";
  xs.(int t (Array.length xs))
