(** Program specifications: the structured intermediate form from which
    binaries are emitted.

    [generate] builds a random program as an array of function specs, each a
    tree-shaped basic-block skeleton guaranteeing that every block is
    reachable from its function entry. Terminators encode every challenging
    construct of paper Section 2.1. Emission ({!Emit}) lowers this to bytes;
    ground truth is computed directly from the spec, so it is exact by
    construction. *)

type term =
  | T_ret
  | T_halt
  | T_jmp of int  (** to block index within this function *)
  | T_cond of Pbca_isa.Insn.cond * int
      (** conditional: taken target block; fallthrough is the next block *)
  | T_call of int  (** direct call to function index; fallthrough next *)
  | T_call_noret of int  (** call to a non-returning callee; block ends *)
  | T_icall of int  (** indirect call through fp-table slot; fallthrough *)
  | T_tailcall of int  (** jump to another function's entry *)
  | T_jumptable of { targets : int list; spilled : bool }
      (** switch over block indices; default case is the next block *)
  | T_stub of int  (** jump into shared stub [sid] *)
  | T_fall  (** no control-flow instruction; continues into next block *)

type bspec = { bs_body : Pbca_isa.Insn.t list; bs_term : term }

type fspec = {
  fs_name : string;
  fs_blocks : bspec array;
  fs_frame : bool;
  fs_cold : int option;  (** block index outlined as [name.cold] *)
  fs_secondary : int option;  (** block index with an extra entry symbol *)
  fs_cu : int;
  fs_error_style : bool;  (** the conditionally-returning [error] function *)
  fs_noreturn_leaf : bool;  (** exit-like: every path ends in [Halt] *)
}

type stub_mode =
  | Shared  (** entered by plain jumps: code shared between functions *)
  | Tail  (** entered by tail calls: becomes its own function *)
  | Mixed  (** some sharers tear down their frame first, some do not —
               the Listing-1 ambiguity *)

type sspec = {
  ss_body : Pbca_isa.Insn.t list;
  ss_ret : bool;  (** ends in [Ret]; otherwise [Halt] *)
  ss_mode : stub_mode;
  ss_sharers : int list;  (** function indices that branch into this stub *)
}

type t = {
  sp_profile : Profile.t;
  sp_funcs : fspec array;
  sp_stubs : sspec array;
  sp_fptable : int array;  (** function indices reachable via [T_icall] *)
  sp_data : Bytes.t option array;
      (** raw data blob emitted after function [i] (data-in-text); same
          length as [sp_funcs] *)
}

val generate : Profile.t -> t

val spec_returns : t -> bool array
(** Per-function "can return" fixpoint over the spec (including tail calls
    and shared stubs), mirroring the non-returning-function analysis. *)

val block_reachable : t -> returns:bool array -> int -> int -> bool array
(** [block_reachable t ~returns fidx root] marks the blocks of function
    [fidx] reachable from block [root] by intra-procedural control flow,
    where call fall-through paths exist only for returning callees. *)

val error_index : t -> int option
(** Index of the [error]-style function, when the profile enables it. *)
