module W = Pbca_binfmt.Bio.W
module R = Pbca_binfmt.Bio.R

type range = int * int

type gfun = {
  gf_name : string;
  gf_entry : int;
  gf_ranges : range list;
  gf_returns : bool;
  gf_in_symtab : bool;
  gf_cold_parent : string option;
}

type jump_table = {
  jt_jump_addr : int;
  jt_table_addr : int;
  jt_entries : int;
  jt_targets : int list;
  jt_resolvable : bool;
}

type nr_call = { nc_call_addr : int; nc_callee : int; nc_matchable : bool }

type t = {
  gt_binary : string;
  gt_funcs : gfun list;
  gt_tables : jump_table list;
  gt_nr_calls : nr_call list;
}

let coalesce ranges =
  let sorted = List.sort compare ranges in
  let rec merge = function
    | (a1, b1) :: (a2, b2) :: rest when a2 <= b1 ->
      merge ((a1, max b1 b2) :: rest)
    | r :: rest -> r :: merge rest
    | [] -> []
  in
  merge sorted

let find_func t entry =
  List.find_opt (fun f -> f.gf_entry = entry) t.gt_funcs

let write_func w f =
  W.str w f.gf_name;
  W.u64 w f.gf_entry;
  W.u32 w (List.length f.gf_ranges);
  List.iter
    (fun (lo, hi) ->
      W.u64 w lo;
      W.u64 w hi)
    f.gf_ranges;
  W.u8 w (if f.gf_returns then 1 else 0);
  W.u8 w (if f.gf_in_symtab then 1 else 0);
  match f.gf_cold_parent with
  | None -> W.u8 w 0
  | Some p ->
    W.u8 w 1;
    W.str w p

let read_func r =
  let gf_name = R.str r in
  let gf_entry = R.u64 r in
  let n = R.u32 r in
  let gf_ranges =
    List.init n (fun _ ->
        let lo = R.u64 r in
        let hi = R.u64 r in
        (lo, hi))
  in
  let gf_returns = R.u8 r = 1 in
  let gf_in_symtab = R.u8 r = 1 in
  let gf_cold_parent = if R.u8 r = 1 then Some (R.str r) else None in
  { gf_name; gf_entry; gf_ranges; gf_returns; gf_in_symtab; gf_cold_parent }

let write_table w t =
  W.u64 w t.jt_jump_addr;
  W.u64 w t.jt_table_addr;
  W.u32 w t.jt_entries;
  W.u32 w (List.length t.jt_targets);
  List.iter (W.u64 w) t.jt_targets;
  W.u8 w (if t.jt_resolvable then 1 else 0)

let read_table r =
  let jt_jump_addr = R.u64 r in
  let jt_table_addr = R.u64 r in
  let jt_entries = R.u32 r in
  let n = R.u32 r in
  let jt_targets = List.init n (fun _ -> R.u64 r) in
  let jt_resolvable = R.u8 r = 1 in
  { jt_jump_addr; jt_table_addr; jt_entries; jt_targets; jt_resolvable }

let write_nr w c =
  W.u64 w c.nc_call_addr;
  W.u64 w c.nc_callee;
  W.u8 w (if c.nc_matchable then 1 else 0)

let read_nr r =
  let nc_call_addr = R.u64 r in
  let nc_callee = R.u64 r in
  let nc_matchable = R.u8 r = 1 in
  { nc_call_addr; nc_callee; nc_matchable }

let write w t =
  W.str w t.gt_binary;
  W.u32 w (List.length t.gt_funcs);
  List.iter (write_func w) t.gt_funcs;
  W.u32 w (List.length t.gt_tables);
  List.iter (write_table w) t.gt_tables;
  W.u32 w (List.length t.gt_nr_calls);
  List.iter (write_nr w) t.gt_nr_calls

let read r =
  let gt_binary = R.str r in
  let gt_funcs = List.init (R.u32 r) (fun _ -> read_func r) in
  let gt_tables = List.init (R.u32 r) (fun _ -> read_table r) in
  let gt_nr_calls = List.init (R.u32 r) (fun _ -> read_nr r) in
  { gt_binary; gt_funcs; gt_tables; gt_nr_calls }
