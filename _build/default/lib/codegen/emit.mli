(** Lowering of program specs to SBF images.

    Two-pass assembly: item lists with symbolic labels are built from the
    spec, addresses are assigned (16-byte function alignment, NOP padding),
    then displacements are resolved and bytes encoded. Jump tables and the
    indirect-call function-pointer table are materialized in [.rodata];
    debug information in [.debug]. Ground truth is computed from the spec
    and the assigned addresses, so it is exact by construction. *)

type result = {
  image : Pbca_binfmt.Image.t;
  ground_truth : Ground_truth.t;
  debug : Pbca_debuginfo.Types.t;
      (** the debug info also serialized into the [.debug] section *)
}

val emit : Spec.t -> result

val generate : Profile.t -> result
(** [generate p] = [emit (Spec.generate p)]. *)
