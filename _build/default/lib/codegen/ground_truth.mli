(** Ground truth emitted alongside each generated binary.

    Plays the role of the paper's DWARF + RTL ground truth (Section 8.1):
    function address ranges (supporting non-contiguous functions and code
    shared between functions), jump-table sizes and targets, and
    non-returning call sites. Items that a correct parser is *expected* to
    miss carry flags matching the paper's four difference classes: calls to
    the conditionally-returning [error] are not name-matchable; [.cold]
    fragments carry their parent's name; stack-spilled jump tables are marked
    unresolvable. *)

type range = int * int
(** Half-open [lo, hi). *)

type gfun = {
  gf_name : string;
  gf_entry : int;
  gf_ranges : range list;  (** coalesced, sorted by start *)
  gf_returns : bool;
  gf_in_symtab : bool;  (** false for code reached only via tail calls *)
  gf_cold_parent : string option;
      (** [Some parent] when this is an outlined [parent.cold] fragment that
          DWARF would attribute to [parent] (paper difference 2) *)
}

type jump_table = {
  jt_jump_addr : int;  (** address of the indirect jump instruction *)
  jt_table_addr : int;
  jt_entries : int;
  jt_targets : int list;
  jt_resolvable : bool;
      (** false when the computation spills through the stack
          (paper difference 3) *)
}

type nr_call = {
  nc_call_addr : int;  (** address of the call instruction *)
  nc_callee : int;  (** callee entry address *)
  nc_matchable : bool;
      (** false for calls to [error]-style conditional non-returners
          (paper difference 1) *)
}

type t = {
  gt_binary : string;
  gt_funcs : gfun list;
  gt_tables : jump_table list;
  gt_nr_calls : nr_call list;
}

val coalesce : range list -> range list
(** Sort and merge adjacent/overlapping ranges. *)

val find_func : t -> int -> gfun option
(** Look up by entry address. *)

val write : Pbca_binfmt.Bio.W.t -> t -> unit
val read : Pbca_binfmt.Bio.R.t -> t
