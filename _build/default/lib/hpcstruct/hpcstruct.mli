(** Program-structure recovery: the hpcstruct case study (paper Section 7).

    Relates machine instructions back to source constructs: for every
    function, its source file and line, loop nests (with the line of each
    loop head), inline call contexts, and per-block line ranges — the
    information HPCToolkit uses to attribute performance measurements.

    Execution follows the seven phases of paper Figure 2:
    1. read the binary image from bytes           (serial)
    2. parse debug-info compilation units         (parallel)
    3. build the address-to-line lookup structure (serial, by design)
    4. construct the CFG                          (parallel)
    5. build output skeletons                     (serial)
    6. fill skeletons with loops/lines/inlines    (parallel)
    7. serialize                                  (serial tail)

    Each phase is timed and, when parallel, records a task trace so the
    schedule simulator can replay it at any thread count. *)

type phase = {
  ph_name : string;
  ph_wall : float;  (** measured wall-clock seconds on this machine *)
  ph_trace : Pbca_simsched.Trace.t option;  (** None for serial phases *)
  ph_work : int;  (** work units (trace total, or a serial estimate) *)
}

type result = {
  output : string;  (** the serialized structure file *)
  phases : phase list;
  cfg : Pbca_core.Cfg.t;
  n_funcs : int;
  n_loops : int;
  n_stmts : int;
}

val run :
  ?config:Pbca_core.Config.t ->
  pool:Pbca_concurrent.Task_pool.t ->
  Bytes.t ->
  result
(** [run ~pool bytes] processes a serialized SBF image. *)

val run_image :
  ?config:Pbca_core.Config.t ->
  pool:Pbca_concurrent.Task_pool.t ->
  Pbca_binfmt.Image.t ->
  result
(** Like {!run} but skips phase 1 (the image is already loaded). *)

val phase_wall : result -> string -> float
(** Total wall time of phases whose name contains the given substring. *)

val total_wall : result -> float
