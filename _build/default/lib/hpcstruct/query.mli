(** Address-to-context queries over recovered structure.

    The consumer side of hpcstruct: a profiler has instruction addresses
    and wants static calling contexts (HPCToolkit's attribution step,
    paper Section 7.1). Build once after structure recovery; queries are
    pure and can run from any number of threads (the CFG is read-only
    after finalization, paper Section 7.2). *)

type context = {
  cx_func : string;
  cx_entry : int;
  cx_file : string;
  cx_line : int;
  cx_loop_depth : int;
  cx_inline : string list;  (** outermost first *)
}

type t

val build :
  Pbca_core.Cfg.t -> Pbca_debuginfo.Types.t -> t
(** Precomputes a block-interval index and per-function loop nesting. *)

val lookup : t -> int -> context option
(** [None] when the address is padding or unreached code. *)

val attribute :
  t -> int list -> (context * int) list
(** Histogram a batch of sample addresses by context (function + line),
    sorted by count descending — the classic profile report. *)
