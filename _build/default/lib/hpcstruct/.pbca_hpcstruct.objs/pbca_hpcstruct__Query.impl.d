lib/hpcstruct/query.ml: Array Hashtbl List Option Pbca_analysis Pbca_core Pbca_debuginfo
