lib/hpcstruct/hpcstruct.ml: Array Buffer Bytes List Option Pbca_analysis Pbca_binfmt Pbca_concurrent Pbca_core Pbca_debuginfo Pbca_simsched Printf String Unix
