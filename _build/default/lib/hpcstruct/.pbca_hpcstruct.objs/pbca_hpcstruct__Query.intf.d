lib/hpcstruct/query.mli: Pbca_core Pbca_debuginfo
