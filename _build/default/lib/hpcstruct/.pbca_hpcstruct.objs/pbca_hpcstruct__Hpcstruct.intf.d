lib/hpcstruct/hpcstruct.mli: Bytes Pbca_binfmt Pbca_concurrent Pbca_core Pbca_simsched
