module Cfg = Pbca_core.Cfg
module Dbg = Pbca_debuginfo.Types
module Line_map = Pbca_debuginfo.Line_map

type context = {
  cx_func : string;
  cx_entry : int;
  cx_file : string;
  cx_line : int;
  cx_loop_depth : int;
  cx_inline : string list;
}

type interval = {
  lo : int;
  hi : int;
  func : Cfg.func;
  depth : int;
}

type t = {
  intervals : interval array;  (* sorted by lo *)
  line_map : Line_map.t;
  dbg : Dbg.t;
}

let build (g : Cfg.t) dbg =
  let items = ref [] in
  List.iter
    (fun (f : Cfg.func) ->
      let fv = Pbca_analysis.Func_view.make g f in
      let dom = Pbca_analysis.Dominators.compute fv in
      let loops = Pbca_analysis.Loops.compute fv dom in
      Array.iteri
        (fun i (b : Cfg.block) ->
          items :=
            {
              lo = b.Cfg.b_start;
              hi = Cfg.block_end b;
              func = f;
              depth = loops.Pbca_analysis.Loops.depth.(i);
            }
            :: !items)
        fv.Pbca_analysis.Func_view.blocks)
    (Cfg.funcs_list g);
  let intervals = Array.of_list !items in
  (* blocks shared between functions yield several intervals for the same
     range; keep the lowest-entry owner first so lookups are deterministic *)
  Array.sort
    (fun a b ->
      match compare a.lo b.lo with
      | 0 -> compare a.func.Cfg.f_entry_addr b.func.Cfg.f_entry_addr
      | c -> c)
    intervals;
  { intervals; line_map = Line_map.build dbg; dbg }

let find_interval t addr =
  let n = Array.length t.intervals in
  let rec bsearch lo hi best =
    if lo > hi then best
    else
      let mid = (lo + hi) / 2 in
      if t.intervals.(mid).lo <= addr then bsearch (mid + 1) hi (Some mid)
      else bsearch lo (mid - 1) best
  in
  match bsearch 0 (n - 1) None with
  | Some i ->
    (* several intervals can share a lo; scan the run around [i] *)
    let rec back j = if j > 0 && t.intervals.(j - 1).lo = t.intervals.(i).lo then back (j - 1) else j in
    let rec pick j =
      if j >= n || t.intervals.(j).lo > addr then None
      else if addr < t.intervals.(j).hi then Some t.intervals.(j)
      else pick (j + 1)
    in
    (* walk forward from the first candidate at or before addr *)
    let rec seek j best =
      if j < 0 then best
      else if t.intervals.(j).lo <= addr && addr < t.intervals.(j).hi then
        Some t.intervals.(j)
      else if t.intervals.(j).hi <= addr && best <> None then best
      else seek (j - 1) best
    in
    (match pick (back i) with Some x -> Some x | None -> seek i None)
  | None -> None

let lookup t addr =
  match find_interval t addr with
  | None -> None
  | Some iv ->
    let file, line =
      match Line_map.lookup t.line_map addr with
      | Some le -> (le.Dbg.file, le.Dbg.line)
      | None -> ("?", 0)
    in
    Some
      {
        cx_func = iv.func.Cfg.f_name;
        cx_entry = iv.func.Cfg.f_entry_addr;
        cx_file = file;
        cx_line = line;
        cx_loop_depth = iv.depth;
        cx_inline = Line_map.inline_context t.dbg addr;
      }

let attribute t samples =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun addr ->
      match lookup t addr with
      | Some cx ->
        let key = (cx.cx_func, cx.cx_line) in
        let cur, _ =
          Option.value (Hashtbl.find_opt counts key) ~default:(0, cx)
        in
        Hashtbl.replace counts key (cur + 1, cx)
      | None -> ())
    samples;
  Hashtbl.fold (fun _ (n, cx) acc -> (cx, n) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
