(** Concurrent hash map with entry-level atomicity.

    This is the OCaml counterpart of TBB's [concurrent_hash_map], the data
    structure at the heart of the paper's five parallel-parsing invariants
    (Listings 4-6). The table is sharded; each shard is protected by its own
    mutex, so operations on keys that hash to different shards proceed
    independently, while operations on the same key are serialized — exactly
    the "threads branching to the same address synchronize, threads branching
    to different addresses proceed independently" requirement of Invariant 1.

    [update] provides the accessor semantics of Listing 5: the callback runs
    while the entry's shard lock is held, so a read-modify-write of one entry
    is atomic with respect to all other operations on that entry. Callbacks
    must not re-enter the same map (same-shard re-entry would deadlock). *)

module Make (H : Hashtbl.HashedType) : sig
  type key = H.t
  type 'a t

  (** [create ?shards ()] makes an empty map. [shards] defaults to 64 and is
      rounded up to a power of two. *)
  val create : ?shards:int -> unit -> 'a t

  val find : 'a t -> key -> 'a option
  val mem : 'a t -> key -> bool

  (** [insert_if_absent t k v] inserts [k -> v] if [k] is unbound and returns
      [true]; if [k] is already bound it leaves the map unchanged and returns
      [false]. This is the "first inserter wins" primitive of Invariants 1
      and 5 (paper Listing 4). *)
  val insert_if_absent : 'a t -> key -> 'a -> bool

  (** [find_or_insert t k mk] returns the binding of [k], creating it with
      [mk ()] first if absent. The boolean is [true] iff this call created
      the binding. [mk] runs under the shard lock. *)
  val find_or_insert : 'a t -> key -> (unit -> 'a) -> 'a * bool

  (** [update t k f] atomically replaces the binding of [k]: [f] receives the
      current binding (or [None]) and returns the new binding (or [None] to
      remove) along with a result passed back to the caller. *)
  val update : 'a t -> key -> ('a option -> 'a option * 'r) -> 'r

  (** [remove t k] removes the binding, returning it if present. *)
  val remove : 'a t -> key -> 'a option

  val length : 'a t -> int
  val clear : 'a t -> unit

  (** Whole-table iteration. These lock one shard at a time and therefore see
      a consistent snapshot only when no writers are active; they are meant
      for the quiescent phases between parallel stages (paper Section 7.2:
      after construction the CFG is read-only). *)

  val iter : (key -> 'a -> unit) -> 'a t -> unit
  val fold : (key -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
  val to_list : 'a t -> (key * 'a) list
end
