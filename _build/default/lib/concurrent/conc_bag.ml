type 'a t = 'a list Atomic.t

let create () = Atomic.make []

let rec add t x =
  let cur = Atomic.get t in
  if not (Atomic.compare_and_set t cur (x :: cur)) then add t x

let is_empty t = Atomic.get t = []
let drain t = Atomic.exchange t []
let to_list t = Atomic.get t
let length t = List.length (Atomic.get t)
