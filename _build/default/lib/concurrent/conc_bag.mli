(** Concurrent bag: unordered collection with cheap concurrent insertion.

    Used to collect results produced by parallel tasks (e.g. newly discovered
    functions, trace events). Insertions are wait-free on an atomic list
    head; draining happens after the parallel phase quiesces. *)

type 'a t

val create : unit -> 'a t
val add : 'a t -> 'a -> unit
val is_empty : 'a t -> bool

(** [drain t] atomically removes and returns all elements (unspecified
    order). *)
val drain : 'a t -> 'a list

(** [to_list t] returns the current contents without removing them. *)
val to_list : 'a t -> 'a list

val length : 'a t -> int
