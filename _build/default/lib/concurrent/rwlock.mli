(** Reader-writer lock.

    Multiple readers may hold the lock simultaneously; a writer excludes
    everyone. Writers are given preference over incoming readers to avoid
    writer starvation. This is the OCaml counterpart of the entry-level
    reader-writer locks that TBB's [concurrent_hash_map] exposes through its
    accessor semantics (paper, Section 6.1). *)

type t

val create : unit -> t

val read_lock : t -> unit
val read_unlock : t -> unit

val write_lock : t -> unit
val write_unlock : t -> unit

(** [with_read t f] runs [f ()] while holding the lock in shared mode,
    releasing it even if [f] raises. *)
val with_read : t -> (unit -> 'a) -> 'a

(** [with_write t f] runs [f ()] while holding the lock exclusively,
    releasing it even if [f] raises. *)
val with_write : t -> (unit -> 'a) -> 'a
