(** Cyclic barrier for [n] parties. Used by the concurrency tests to force
    the interleavings the parsing invariants must survive. *)

type t

val create : int -> t

(** [await t] blocks until [n] parties have called it, then releases them
    all; the barrier then resets for reuse. *)
val await : t -> unit
