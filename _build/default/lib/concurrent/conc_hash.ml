module Make (H : Hashtbl.HashedType) = struct
  module T = Hashtbl.Make (H)

  type key = H.t

  type 'a shard = { lock : Mutex.t; table : 'a T.t }
  type 'a t = { shards : 'a shard array; mask : int }

  let next_pow2 n =
    let rec go p = if p >= n then p else go (p * 2) in
    go 1

  let create ?(shards = 64) () =
    let n = next_pow2 (max 1 shards) in
    {
      shards =
        Array.init n (fun _ -> { lock = Mutex.create (); table = T.create 16 });
      mask = n - 1;
    }

  let shard_of t k = t.shards.(H.hash k land t.mask)

  let with_shard s f =
    Mutex.lock s.lock;
    match f s.table with
    | v ->
      Mutex.unlock s.lock;
      v
    | exception e ->
      Mutex.unlock s.lock;
      raise e

  let find t k = with_shard (shard_of t k) (fun tbl -> T.find_opt tbl k)
  let mem t k = with_shard (shard_of t k) (fun tbl -> T.mem tbl k)

  let insert_if_absent t k v =
    with_shard (shard_of t k) (fun tbl ->
        if T.mem tbl k then false
        else begin
          T.add tbl k v;
          true
        end)

  let find_or_insert t k mk =
    with_shard (shard_of t k) (fun tbl ->
        match T.find_opt tbl k with
        | Some v -> (v, false)
        | None ->
          let v = mk () in
          T.add tbl k v;
          (v, true))

  let update t k f =
    with_shard (shard_of t k) (fun tbl ->
        let cur = T.find_opt tbl k in
        let next, r = f cur in
        (match (cur, next) with
        | _, Some v -> T.replace tbl k v
        | Some _, None -> T.remove tbl k
        | None, None -> ());
        r)

  let remove t k =
    with_shard (shard_of t k) (fun tbl ->
        match T.find_opt tbl k with
        | Some v ->
          T.remove tbl k;
          Some v
        | None -> None)

  let length t =
    Array.fold_left (fun acc s -> acc + with_shard s T.length) 0 t.shards

  let clear t = Array.iter (fun s -> with_shard s T.reset) t.shards

  let iter f t =
    Array.iter (fun s -> with_shard s (fun tbl -> T.iter f tbl)) t.shards

  let fold f t init =
    Array.fold_left
      (fun acc s -> with_shard s (fun tbl -> T.fold f tbl acc))
      init t.shards

  let to_list t = fold (fun k v acc -> (k, v) :: acc) t []
end
