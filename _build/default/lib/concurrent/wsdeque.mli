(** Work-stealing deque.

    The owner pushes and pops at the bottom (LIFO, for locality); thieves
    steal from the top (FIFO, taking the oldest and typically largest task).
    A single mutex per deque keeps the implementation simple; contention is
    low because thieves only touch a deque when their own is empty. *)

type 'a t

val create : unit -> 'a t

(** Owner end. *)

val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option

(** Thief end. *)

val steal : 'a t -> 'a option

val length : 'a t -> int
val is_empty : 'a t -> bool
