type 'a t = { lock : Mutex.t; mutable items : 'a list; mutable count : int }
(* [items] holds the deque bottom-first: the head is the owner end. Steals
   take from the tail; O(n) there is acceptable because steals are rare and
   deques stay short (tasks are coarse: one function parse each). *)

let create () = { lock = Mutex.create (); items = []; count = 0 }

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let push t x =
  with_lock t (fun () ->
      t.items <- x :: t.items;
      t.count <- t.count + 1)

let pop t =
  with_lock t (fun () ->
      match t.items with
      | [] -> None
      | x :: rest ->
        t.items <- rest;
        t.count <- t.count - 1;
        Some x)

let steal t =
  with_lock t (fun () ->
      match t.items with
      | [] -> None
      | items ->
        let rec split_last acc = function
          | [ last ] -> (List.rev acc, last)
          | x :: rest -> split_last (x :: acc) rest
          | [] -> assert false
        in
        let front, last = split_last [] items in
        t.items <- front;
        t.count <- t.count - 1;
        Some last)

let length t = with_lock t (fun () -> t.count)
let is_empty t = length t = 0
