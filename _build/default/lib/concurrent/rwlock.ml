type t = {
  mutex : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  mutable readers : int; (* active readers *)
  mutable writer : bool; (* a writer is active *)
  mutable waiting_writers : int;
}

let create () =
  {
    mutex = Mutex.create ();
    can_read = Condition.create ();
    can_write = Condition.create ();
    readers = 0;
    writer = false;
    waiting_writers = 0;
  }

let read_lock t =
  Mutex.lock t.mutex;
  while t.writer || t.waiting_writers > 0 do
    Condition.wait t.can_read t.mutex
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.mutex

let read_unlock t =
  Mutex.lock t.mutex;
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.signal t.can_write;
  Mutex.unlock t.mutex

let write_lock t =
  Mutex.lock t.mutex;
  t.waiting_writers <- t.waiting_writers + 1;
  while t.writer || t.readers > 0 do
    Condition.wait t.can_write t.mutex
  done;
  t.waiting_writers <- t.waiting_writers - 1;
  t.writer <- true;
  Mutex.unlock t.mutex

let write_unlock t =
  Mutex.lock t.mutex;
  t.writer <- false;
  if t.waiting_writers > 0 then Condition.signal t.can_write
  else Condition.broadcast t.can_read;
  Mutex.unlock t.mutex

let with_read t f =
  read_lock t;
  match f () with
  | v ->
    read_unlock t;
    v
  | exception e ->
    read_unlock t;
    raise e

let with_write t f =
  write_lock t;
  match f () with
  | v ->
    write_unlock t;
    v
  | exception e ->
    write_unlock t;
    raise e
