type t = { n : int }

let create ~threads =
  if threads < 1 then invalid_arg "Task_pool.create: threads must be >= 1";
  { n = threads }

let threads t = t.n

type region = {
  deques : (unit -> unit) Wsdeque.t array;
  pending : int Atomic.t; (* spawned-but-unfinished tasks *)
  failure : exn option Atomic.t;
}

(* Worker slot of the current domain within the active region. *)
let slot_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let worker_index () = Domain.DLS.get slot_key

let spawn_in region task =
  let me = Domain.DLS.get slot_key in
  Atomic.incr region.pending;
  Wsdeque.push region.deques.(me) task

let run_task region task =
  (match task () with
  | () -> ()
  | exception e ->
    (* Keep the first failure; later tasks still drain so the region can
       terminate cleanly. *)
    ignore (Atomic.compare_and_set region.failure None (Some e)));
  Atomic.decr region.pending

(* Find work: own deque first, then steal round-robin from the others. *)
let find_work region me =
  match Wsdeque.pop region.deques.(me) with
  | Some _ as t -> t
  | None ->
    let n = Array.length region.deques in
    let rec try_steal i =
      if i >= n then None
      else
        let victim = (me + i) mod n in
        match Wsdeque.steal region.deques.(victim) with
        | Some _ as t -> t
        | None -> try_steal (i + 1)
    in
    try_steal 1

let worker_loop region me =
  Domain.DLS.set slot_key me;
  let idle_spins = ref 0 in
  let rec loop () =
    if Atomic.get region.pending = 0 then ()
    else
      match find_work region me with
      | Some task ->
        idle_spins := 0;
        run_task region task;
        loop ()
      | None ->
        incr idle_spins;
        if !idle_spins > 64 then begin
          (* Nothing to steal: another worker is still producing. Sleep
             briefly rather than burning the core it may be sharing. *)
          idle_spins := 0;
          Unix.sleepf 0.0002
        end
        else Domain.cpu_relax ();
        loop ()
  in
  loop ()

let run t root =
  let region =
    {
      deques = Array.init t.n (fun _ -> Wsdeque.create ());
      pending = Atomic.make 0;
      failure = Atomic.make None;
    }
  in
  let spawn task = spawn_in region task in
  Atomic.incr region.pending;
  Wsdeque.push region.deques.(0) (fun () -> root spawn);
  let helpers =
    Array.init (t.n - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop region (i + 1)))
  in
  worker_loop region 0;
  Array.iter Domain.join helpers;
  Domain.DLS.set slot_key 0;
  match Atomic.get region.failure with None -> () | Some e -> raise e

let parallel_for t ?chunk lo hi f =
  if hi > lo then begin
    let count = hi - lo in
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (count / (t.n * 8))
    in
    let next = Atomic.make lo in
    let body () =
      let rec grab () =
        let start = Atomic.fetch_and_add next chunk in
        if start < hi then begin
          let stop = min hi (start + chunk) in
          for i = start to stop - 1 do
            f i
          done;
          grab ()
        end
      in
      grab ()
    in
    run t (fun spawn ->
        for _ = 2 to t.n do
          spawn body
        done;
        body ())
  end

let parallel_for_reduce t ?chunk lo hi ~init ~map ~combine =
  let partials = Array.make t.n init in
  parallel_for t ?chunk lo hi (fun i ->
      let w = worker_index () in
      partials.(w) <- combine partials.(w) (map i));
  Array.fold_left combine init partials

let parallel_iter_list t xs f =
  let arr = Array.of_list xs in
  parallel_for t 0 (Array.length arr) (fun i -> f arr.(i))
