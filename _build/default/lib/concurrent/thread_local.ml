type 'a t = {
  key : 'a option ref Domain.DLS.key;
  mk : unit -> 'a;
  all : 'a list Atomic.t;
}

let create mk =
  { key = Domain.DLS.new_key (fun () -> ref None); mk; all = Atomic.make [] }

let rec register t v =
  let cur = Atomic.get t.all in
  if not (Atomic.compare_and_set t.all cur (v :: cur)) then register t v

let get t =
  let cell = Domain.DLS.get t.key in
  match !cell with
  | Some v -> v
  | None ->
    let v = t.mk () in
    cell := Some v;
    register t v;
    v

let fold t ~init ~f = List.fold_left f init (Atomic.get t.all)
