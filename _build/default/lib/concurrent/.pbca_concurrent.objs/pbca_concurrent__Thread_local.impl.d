lib/concurrent/thread_local.ml: Atomic Domain List
