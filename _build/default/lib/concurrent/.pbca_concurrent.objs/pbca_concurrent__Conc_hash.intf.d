lib/concurrent/conc_hash.mli: Hashtbl
