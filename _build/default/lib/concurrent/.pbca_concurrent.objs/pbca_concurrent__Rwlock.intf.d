lib/concurrent/rwlock.mli:
