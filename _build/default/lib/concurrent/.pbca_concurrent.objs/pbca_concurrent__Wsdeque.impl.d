lib/concurrent/wsdeque.ml: List Mutex
