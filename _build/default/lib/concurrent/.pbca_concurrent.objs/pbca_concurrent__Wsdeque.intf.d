lib/concurrent/wsdeque.mli:
