lib/concurrent/thread_local.mli:
