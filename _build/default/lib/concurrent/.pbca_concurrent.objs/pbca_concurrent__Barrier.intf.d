lib/concurrent/barrier.mli:
