lib/concurrent/conc_hash.ml: Array Hashtbl Mutex
