lib/concurrent/conc_bag.mli:
