lib/concurrent/conc_bag.ml: Atomic List
