lib/concurrent/task_pool.ml: Array Atomic Domain Unix Wsdeque
