lib/concurrent/rwlock.ml: Condition Mutex
