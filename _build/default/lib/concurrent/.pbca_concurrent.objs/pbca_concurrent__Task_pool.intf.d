lib/concurrent/task_pool.mli:
