(** Per-domain storage.

    The paper uses a thread-local cache of already-decoded addresses to avoid
    both redundant decoding and synchronization on the shared block table
    (Section 6.3). This module wraps [Domain.DLS] so each domain lazily gets
    its own instance of a value, and the instances can be enumerated once the
    parallel phase has quiesced. *)

type 'a t

(** [create mk] makes a slot whose per-domain value is built on first access
    by [mk ()]. *)
val create : (unit -> 'a) -> 'a t

(** [get t] returns the calling domain's instance. *)
val get : 'a t -> 'a

(** [fold t ~init ~f] folds over every instance created so far. Only safe
    once the domains using [t] have finished. *)
val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
